//! FASTA reading and writing.
//!
//! The paper's pipeline step (1) is "load query and database sequences";
//! this module is that step. The reader is an iterator over records, works
//! on any `BufRead`, tolerates `\r\n`, blank lines and lowercase residues,
//! and reports precise line numbers on malformed input.

use crate::alphabet::Alphabet;
use crate::error::{FastaIssue, SeqError};
use crate::sequence::EncodedSeq;
use std::fmt;
use std::io::{BufRead, Write};

/// One raw FASTA record: header (without `>`) plus ASCII residue text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line content after the `>`.
    pub header: String,
    /// Concatenated sequence lines (whitespace stripped).
    pub sequence: Vec<u8>,
}

impl FastaRecord {
    /// Encode this record under `alphabet` (leniently).
    pub fn encode(&self, alphabet: &Alphabet) -> Result<EncodedSeq, SeqError> {
        EncodedSeq::from_text(&self.header, &self.sequence, alphabet)
    }
}

/// Streaming FASTA reader.
///
/// ```
/// use sw_seq::{FastaReader, Alphabet};
/// let data = b">q1 demo\nMKVL\nITRA\n>q2\nWWW\n";
/// let records: Vec<_> = FastaReader::new(&data[..])
///     .collect::<Result<_, _>>()
///     .unwrap();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].header, "q1 demo");
/// assert_eq!(records[0].sequence, b"MKVLITRA");
/// ```
pub struct FastaReader<R: BufRead> {
    reader: R,
    line_no: usize,
    /// Header of the record currently being accumulated.
    pending_header: Option<String>,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastaReader {
            reader,
            line_no: 0,
            pending_header: None,
            done: false,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize, SeqError> {
        buf.clear();
        let n = self.reader.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        Ok(n)
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<FastaRecord, SeqError>;

    /// Record-level format errors are *recoverable*: the reader consumes
    /// the malformed record (or run of headerless lines), reports one
    /// typed [`SeqError::Fasta`] for it, and the next call continues at
    /// the following header. Strict callers (`collect`) still stop at the
    /// first error; quarantine mode keeps iterating. I/O errors end the
    /// iteration.
    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut line = String::new();
        // Find the header if we don't already hold one from the previous record.
        while self.pending_header.is_none() {
            match self.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {
                    let t = line.trim_end();
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(h) = t.strip_prefix('>') {
                        self.pending_header = Some(h.trim().to_string());
                    } else {
                        // Consume the whole run of headerless lines so the
                        // error is reported once and the next call resumes
                        // at the following record.
                        let at = self.line_no;
                        loop {
                            match self.read_line(&mut line) {
                                Ok(0) => break,
                                Ok(_) => {
                                    let t = line.trim_end();
                                    if t.is_empty() {
                                        continue;
                                    }
                                    if let Some(h) = t.strip_prefix('>') {
                                        self.pending_header = Some(h.trim().to_string());
                                        break;
                                    }
                                }
                                Err(e) => {
                                    self.done = true;
                                    return Some(Err(e));
                                }
                            }
                        }
                        return Some(Err(SeqError::Fasta {
                            line: at,
                            kind: FastaIssue::DataBeforeHeader,
                            msg: "sequence data before first '>' header".into(),
                        }));
                    }
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        // `pending_header` is always set right after its '>' line is read,
        // so `line_no` still points at that line here.
        let header = self.pending_header.take().expect("set above");
        let header_line = self.line_no;
        let mut sequence = Vec::new();
        loop {
            match self.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(_) => {
                    let t = line.trim_end();
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(h) = t.strip_prefix('>') {
                        self.pending_header = Some(h.trim().to_string());
                        break;
                    }
                    sequence.extend(t.bytes().filter(|b| !b.is_ascii_whitespace()));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        if header.is_empty() {
            return Some(Err(SeqError::Fasta {
                line: header_line,
                kind: FastaIssue::EmptyHeader,
                msg: "'>' with no header text (truncated header)".into(),
            }));
        }
        if sequence.is_empty() {
            return Some(Err(SeqError::Fasta {
                line: self.line_no,
                kind: FastaIssue::EmptySequence,
                msg: format!("record '{header}' has no sequence data"),
            }));
        }
        Some(Ok(FastaRecord { header, sequence }))
    }
}

/// Read an entire FASTA stream and encode every record (strict: the
/// first malformed record or residue aborts the load).
pub fn read_encoded<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
) -> Result<Vec<EncodedSeq>, SeqError> {
    FastaReader::new(reader)
        .map(|r| r.and_then(|rec| rec.encode(alphabet)))
        .collect()
}

/// Tally of records skipped by quarantine-mode ingestion, by issue kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Records that parsed and encoded cleanly.
    pub kept: usize,
    counts: [u64; FastaIssue::ALL.len()],
}

impl QuarantineReport {
    fn slot(issue: FastaIssue) -> usize {
        FastaIssue::ALL
            .iter()
            .position(|&i| i == issue)
            .expect("every issue kind is listed in ALL")
    }

    /// Record one skipped record of the given kind.
    pub fn note(&mut self, issue: FastaIssue) {
        self.counts[Self::slot(issue)] += 1;
    }

    /// Skipped records of one kind.
    pub fn count(&self, issue: FastaIssue) -> u64 {
        self.counts[Self::slot(issue)]
    }

    /// Total skipped records across all kinds.
    pub fn skipped(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.skipped() == 0
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{} records kept, none quarantined", self.kept);
        }
        write!(
            f,
            "{} records kept, {} quarantined (",
            self.kept,
            self.skipped()
        )?;
        let mut first = true;
        for issue in FastaIssue::ALL {
            let n = self.count(issue);
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{n} {}", issue.label())?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

/// Read a FASTA stream in quarantine mode: malformed records and records
/// with out-of-alphabet residues are skipped and counted instead of
/// aborting the load. Only I/O errors (and non-record-level failures)
/// abort.
pub fn read_encoded_quarantined<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
) -> Result<(Vec<EncodedSeq>, QuarantineReport), SeqError> {
    let mut report = QuarantineReport::default();
    let mut seqs = Vec::new();
    for item in FastaReader::new(reader) {
        match item {
            Ok(rec) => match rec.encode(alphabet) {
                Ok(s) => {
                    report.kept += 1;
                    seqs.push(s);
                }
                Err(SeqError::InvalidResidue { .. }) => report.note(FastaIssue::InvalidResidue),
                Err(SeqError::EmptySequence) => report.note(FastaIssue::EmptySequence),
                Err(e) => return Err(e),
            },
            Err(SeqError::Fasta { kind, .. }) => report.note(kind),
            Err(e) => return Err(e),
        }
    }
    Ok((seqs, report))
}

/// FASTA writer with configurable line width.
pub struct FastaWriter<W: Write> {
    writer: W,
    width: usize,
}

impl<W: Write> FastaWriter<W> {
    /// Wrap a writer; residues are wrapped at 60 columns (the UniProt style).
    pub fn new(writer: W) -> Self {
        FastaWriter { writer, width: 60 }
    }

    /// Override the residue line width (must be ≥ 1).
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "line width must be at least 1");
        self.width = width;
        self
    }

    /// Write one record, decoding residues under `alphabet`.
    pub fn write(&mut self, seq: &EncodedSeq, alphabet: &Alphabet) -> Result<(), SeqError> {
        writeln!(self.writer, ">{}", seq.header)?;
        let text = alphabet.decode(&seq.residues);
        for chunk in text.chunks(self.width) {
            self.writer.write_all(chunk)?;
            self.writer.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Flush and recover the inner writer.
    pub fn into_inner(mut self) -> Result<W, SeqError> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(data: &[u8]) -> Result<Vec<FastaRecord>, SeqError> {
        FastaReader::new(data).collect()
    }

    #[test]
    fn basic_two_records() {
        let recs = parse(b">a\nMKV\n>b\nWW\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].header, "a");
        assert_eq!(recs[1].sequence, b"WW");
    }

    #[test]
    fn multiline_sequence_concatenated() {
        let recs = parse(b">a\nMK\nVL\nIT\n").unwrap();
        assert_eq!(recs[0].sequence, b"MKVLIT");
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let recs = parse(b">a desc\r\nMKV\r\n\r\n>b\r\nWW\r\n").unwrap();
        assert_eq!(recs[0].header, "a desc");
        assert_eq!(recs[0].sequence, b"MKV");
        assert_eq!(recs[1].sequence, b"WW");
    }

    #[test]
    fn data_before_header_is_error() {
        let err = parse(b"MKV\n>a\nWW\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta { line: 1, .. }));
    }

    #[test]
    fn empty_record_is_error() {
        let err = parse(b">a\n>b\nWW\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta { .. }));
        assert!(err.to_string().contains('a'));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(parse(b"").unwrap().is_empty());
        assert!(parse(b"\n\n").unwrap().is_empty());
    }

    #[test]
    fn trailing_record_without_newline() {
        let recs = parse(b">a\nMKV").unwrap();
        assert_eq!(recs[0].sequence, b"MKV");
    }

    #[test]
    fn internal_whitespace_stripped() {
        let recs = parse(b">a\nMK V\tL\n").unwrap();
        assert_eq!(recs[0].sequence, b"MKVL");
    }

    #[test]
    fn read_encoded_end_to_end() {
        let a = Alphabet::protein();
        let seqs = read_encoded(&b">a\nARND\n>b\nCQE\n"[..], &a).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].residues, vec![0, 1, 2, 3]);
    }

    #[test]
    fn writer_roundtrip() {
        let a = Alphabet::protein();
        let seqs = read_encoded(&b">q one\nMKVLITRAWMKVLITRAW\n"[..], &a).unwrap();
        let mut w = FastaWriter::new(Vec::new()).with_width(5);
        w.write(&seqs[0], &a).unwrap();
        let out = w.into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with(">q one\nMKVLI\n"));
        let reparsed = read_encoded(text.as_bytes(), &a).unwrap();
        assert_eq!(reparsed, seqs);
    }

    #[test]
    fn header_only_whitespace_trimmed() {
        let recs = parse(b">  spaced header  \nMKV\n").unwrap();
        assert_eq!(recs[0].header, "spaced header");
    }

    #[test]
    fn empty_header_is_typed_error() {
        let err = parse(b">\nMKV\n").unwrap_err();
        assert!(
            matches!(
                err,
                SeqError::Fasta {
                    line: 1,
                    kind: FastaIssue::EmptyHeader,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn errors_carry_issue_kinds() {
        let err = parse(b"MKV\n>a\nWW\n").unwrap_err();
        assert!(matches!(
            err,
            SeqError::Fasta {
                kind: FastaIssue::DataBeforeHeader,
                ..
            }
        ));
        let err = parse(b">a\n>b\nWW\n").unwrap_err();
        assert!(matches!(
            err,
            SeqError::Fasta {
                kind: FastaIssue::EmptySequence,
                ..
            }
        ));
    }

    #[test]
    fn reader_recovers_after_record_errors() {
        // One headerless run, one empty record, one truncated header —
        // interleaved with two good records; iterating past the errors
        // must yield both good records.
        let data = b"junk\nmore junk\n>good1\nMKV\n>empty\n>\nWW\n>good2\nITRA\n";
        let items: Vec<_> = FastaReader::new(&data[..]).collect();
        let good: Vec<_> = items.iter().flatten().collect();
        let bad: Vec<_> = items.iter().filter(|r| r.is_err()).collect();
        assert_eq!(good.len(), 2, "{items:?}");
        assert_eq!(good[0].header, "good1");
        assert_eq!(good[1].header, "good2");
        assert_eq!(bad.len(), 3, "{items:?}");
    }

    #[test]
    fn quarantine_keeps_good_and_counts_bad() {
        let a = Alphabet::protein();
        let data = b"junk\n>good1\nMKV\n>\nWW\n>bad!res\nMK1V\n>empty\n>good2\nITRA\n";
        let (seqs, report) = read_encoded_quarantined(&data[..], &a).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].header.as_ref(), "good1");
        assert_eq!(seqs[1].header.as_ref(), "good2");
        assert_eq!(report.kept, 2);
        assert_eq!(report.count(FastaIssue::DataBeforeHeader), 1);
        assert_eq!(report.count(FastaIssue::EmptyHeader), 1);
        assert_eq!(report.count(FastaIssue::InvalidResidue), 1);
        assert_eq!(report.count(FastaIssue::EmptySequence), 1);
        assert_eq!(report.skipped(), 4);
        assert!(!report.is_clean());
        let line = report.to_string();
        assert!(line.contains("2 records kept"), "{line}");
        assert!(line.contains("4 quarantined"), "{line}");
        assert!(line.contains("invalid-residue"), "{line}");
    }

    #[test]
    fn quarantine_clean_input_matches_strict() {
        let a = Alphabet::protein();
        let data = b">a\nARND\n>b\nCQE\n";
        let strict = read_encoded(&data[..], &a).unwrap();
        let (seqs, report) = read_encoded_quarantined(&data[..], &a).unwrap();
        assert_eq!(seqs, strict);
        assert!(report.is_clean());
        assert_eq!(report.to_string(), "2 records kept, none quarantined");
    }

    /// Seeded fuzz over mutated FASTA: start from a valid file, apply
    /// random corruptions (bit flips, injected '>' lines, truncation,
    /// CRLF conversion, invalid residues), and require that (a) nothing
    /// panics, (b) quarantine mode always returns `Ok` on in-memory
    /// input, and (c) kept + skipped covers every record the reader saw.
    #[test]
    fn quarantine_fuzz_mutated_inputs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let a = Alphabet::protein();
        let mut rng = SmallRng::seed_from_u64(0xFA5A);
        let clean =
            b">q1 one\nMKVLITRA\nWWMKV\n>q2\nARNDCQE\n>q3 three\nGHILKMF\nPSTWYV\n".to_vec();
        for case in 0..200 {
            let mut data = clean.clone();
            for _ in 0..rng.gen_range(1..6) {
                match rng.gen_range(0..5) {
                    0 => {
                        // Bit flip within ASCII (bit 7 stays clear: a
                        // non-UTF-8 byte would fail at the I/O layer,
                        // which quarantine deliberately does not absorb).
                        let i = rng.gen_range(0..data.len());
                        data[i] ^= 1u8 << rng.gen_range(0..7);
                    }
                    1 => {
                        // Inject a bare '>' line (truncated header).
                        let i = rng.gen_range(0..data.len());
                        data.splice(i..i, b">\n".iter().copied());
                    }
                    2 => {
                        // Truncate.
                        let keep = rng.gen_range(0..data.len());
                        data.truncate(keep);
                    }
                    3 => {
                        // CRLF-ify every newline.
                        data = data
                            .iter()
                            .flat_map(|&b| {
                                if b == b'\n' {
                                    vec![b'\r', b'\n']
                                } else {
                                    vec![b]
                                }
                            })
                            .collect();
                    }
                    _ => {
                        // Drop an invalid residue into the stream.
                        let i = rng.gen_range(0..data.len().max(1));
                        data.insert(i.min(data.len()), b'1');
                    }
                }
                if data.is_empty() {
                    data.push(b'\n');
                }
            }
            // Strict path: Ok or Err, never a panic.
            let _ = read_encoded(&data[..], &a);
            // Quarantine path: in-memory input cannot hit I/O errors, so
            // record-level damage must always be absorbed.
            let (seqs, report) =
                read_encoded_quarantined(&data[..], &a).expect("quarantine absorbs record damage");
            let parsed = FastaReader::new(&data[..]).count();
            assert_eq!(
                report.kept as u64 + report.skipped(),
                parsed as u64,
                "case {case}: every record is either kept or counted"
            );
            assert_eq!(seqs.len(), report.kept, "case {case}");
        }
    }
}
