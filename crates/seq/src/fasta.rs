//! FASTA reading and writing.
//!
//! The paper's pipeline step (1) is "load query and database sequences";
//! this module is that step. The reader is an iterator over records, works
//! on any `BufRead`, tolerates `\r\n`, blank lines and lowercase residues,
//! and reports precise line numbers on malformed input.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::EncodedSeq;
use std::io::{BufRead, Write};

/// One raw FASTA record: header (without `>`) plus ASCII residue text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line content after the `>`.
    pub header: String,
    /// Concatenated sequence lines (whitespace stripped).
    pub sequence: Vec<u8>,
}

impl FastaRecord {
    /// Encode this record under `alphabet` (leniently).
    pub fn encode(&self, alphabet: &Alphabet) -> Result<EncodedSeq, SeqError> {
        EncodedSeq::from_text(&self.header, &self.sequence, alphabet)
    }
}

/// Streaming FASTA reader.
///
/// ```
/// use sw_seq::{FastaReader, Alphabet};
/// let data = b">q1 demo\nMKVL\nITRA\n>q2\nWWW\n";
/// let records: Vec<_> = FastaReader::new(&data[..])
///     .collect::<Result<_, _>>()
///     .unwrap();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].header, "q1 demo");
/// assert_eq!(records[0].sequence, b"MKVLITRA");
/// ```
pub struct FastaReader<R: BufRead> {
    reader: R,
    line_no: usize,
    /// Header of the record currently being accumulated.
    pending_header: Option<String>,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastaReader {
            reader,
            line_no: 0,
            pending_header: None,
            done: false,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize, SeqError> {
        buf.clear();
        let n = self.reader.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        Ok(n)
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<FastaRecord, SeqError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut line = String::new();
        // Find the header if we don't already hold one from the previous record.
        while self.pending_header.is_none() {
            match self.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {
                    let t = line.trim_end();
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(h) = t.strip_prefix('>') {
                        self.pending_header = Some(h.trim().to_string());
                    } else {
                        self.done = true;
                        return Some(Err(SeqError::Fasta {
                            line: self.line_no,
                            msg: "sequence data before first '>' header".into(),
                        }));
                    }
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        let header = self.pending_header.take().expect("set above");
        let mut sequence = Vec::new();
        loop {
            match self.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(_) => {
                    let t = line.trim_end();
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(h) = t.strip_prefix('>') {
                        self.pending_header = Some(h.trim().to_string());
                        break;
                    }
                    sequence.extend(t.bytes().filter(|b| !b.is_ascii_whitespace()));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        if sequence.is_empty() {
            self.done = true;
            return Some(Err(SeqError::Fasta {
                line: self.line_no,
                msg: format!("record '{header}' has no sequence data"),
            }));
        }
        Some(Ok(FastaRecord { header, sequence }))
    }
}

/// Read an entire FASTA stream and encode every record.
pub fn read_encoded<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
) -> Result<Vec<EncodedSeq>, SeqError> {
    FastaReader::new(reader)
        .map(|r| r.and_then(|rec| rec.encode(alphabet)))
        .collect()
}

/// FASTA writer with configurable line width.
pub struct FastaWriter<W: Write> {
    writer: W,
    width: usize,
}

impl<W: Write> FastaWriter<W> {
    /// Wrap a writer; residues are wrapped at 60 columns (the UniProt style).
    pub fn new(writer: W) -> Self {
        FastaWriter { writer, width: 60 }
    }

    /// Override the residue line width (must be ≥ 1).
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "line width must be at least 1");
        self.width = width;
        self
    }

    /// Write one record, decoding residues under `alphabet`.
    pub fn write(&mut self, seq: &EncodedSeq, alphabet: &Alphabet) -> Result<(), SeqError> {
        writeln!(self.writer, ">{}", seq.header)?;
        let text = alphabet.decode(&seq.residues);
        for chunk in text.chunks(self.width) {
            self.writer.write_all(chunk)?;
            self.writer.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Flush and recover the inner writer.
    pub fn into_inner(mut self) -> Result<W, SeqError> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(data: &[u8]) -> Result<Vec<FastaRecord>, SeqError> {
        FastaReader::new(data).collect()
    }

    #[test]
    fn basic_two_records() {
        let recs = parse(b">a\nMKV\n>b\nWW\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].header, "a");
        assert_eq!(recs[1].sequence, b"WW");
    }

    #[test]
    fn multiline_sequence_concatenated() {
        let recs = parse(b">a\nMK\nVL\nIT\n").unwrap();
        assert_eq!(recs[0].sequence, b"MKVLIT");
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let recs = parse(b">a desc\r\nMKV\r\n\r\n>b\r\nWW\r\n").unwrap();
        assert_eq!(recs[0].header, "a desc");
        assert_eq!(recs[0].sequence, b"MKV");
        assert_eq!(recs[1].sequence, b"WW");
    }

    #[test]
    fn data_before_header_is_error() {
        let err = parse(b"MKV\n>a\nWW\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta { line: 1, .. }));
    }

    #[test]
    fn empty_record_is_error() {
        let err = parse(b">a\n>b\nWW\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta { .. }));
        assert!(err.to_string().contains('a'));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(parse(b"").unwrap().is_empty());
        assert!(parse(b"\n\n").unwrap().is_empty());
    }

    #[test]
    fn trailing_record_without_newline() {
        let recs = parse(b">a\nMKV").unwrap();
        assert_eq!(recs[0].sequence, b"MKV");
    }

    #[test]
    fn internal_whitespace_stripped() {
        let recs = parse(b">a\nMK V\tL\n").unwrap();
        assert_eq!(recs[0].sequence, b"MKVL");
    }

    #[test]
    fn read_encoded_end_to_end() {
        let a = Alphabet::protein();
        let seqs = read_encoded(&b">a\nARND\n>b\nCQE\n"[..], &a).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].residues, vec![0, 1, 2, 3]);
    }

    #[test]
    fn writer_roundtrip() {
        let a = Alphabet::protein();
        let seqs = read_encoded(&b">q one\nMKVLITRAWMKVLITRAW\n"[..], &a).unwrap();
        let mut w = FastaWriter::new(Vec::new()).with_width(5);
        w.write(&seqs[0], &a).unwrap();
        let out = w.into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with(">q one\nMKVLI\n"));
        let reparsed = read_encoded(text.as_bytes(), &a).unwrap();
        assert_eq!(reparsed, seqs);
    }

    #[test]
    fn header_only_whitespace_trimmed() {
        let recs = parse(b">  spaced header  \nMKV\n").unwrap();
        assert_eq!(recs[0].header, "spaced header");
    }
}
