//! Error type shared by the sequence substrate.

use std::fmt;

/// Errors produced while parsing, encoding or generating sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A residue character does not belong to the target alphabet.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Byte offset within the sequence (0-based).
        position: usize,
    },
    /// A FASTA stream violated the format (e.g. data before the first header).
    Fasta {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A substitution-matrix file could not be parsed.
    Matrix(String),
    /// An empty sequence where a non-empty one is required.
    EmptySequence,
    /// Underlying I/O failure (stringified to keep the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidResidue { byte, position } => {
                if byte.is_ascii_graphic() {
                    write!(
                        f,
                        "invalid residue '{}' at position {position}",
                        *byte as char
                    )
                } else {
                    write!(
                        f,
                        "invalid residue byte 0x{byte:02x} at position {position}"
                    )
                }
            }
            SeqError::Fasta { line, msg } => write!(f, "FASTA parse error at line {line}: {msg}"),
            SeqError::Matrix(msg) => write!(f, "substitution matrix parse error: {msg}"),
            SeqError::EmptySequence => write!(f, "empty sequence"),
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_residue_printable() {
        let e = SeqError::InvalidResidue {
            byte: b'!',
            position: 7,
        };
        assert_eq!(e.to_string(), "invalid residue '!' at position 7");
    }

    #[test]
    fn display_invalid_residue_nonprintable() {
        let e = SeqError::InvalidResidue {
            byte: 0x01,
            position: 0,
        };
        assert!(e.to_string().contains("0x01"));
    }

    #[test]
    fn display_fasta() {
        let e = SeqError::Fasta {
            line: 3,
            msg: "bad header".into(),
        };
        assert_eq!(e.to_string(), "FASTA parse error at line 3: bad header");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SeqError = io.into();
        assert!(matches!(e, SeqError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}
