//! Error type shared by the sequence substrate.

use std::fmt;

/// Classification of a malformed FASTA record — the typed taxonomy
/// ingestion hardening reports and the quarantine mode counts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FastaIssue {
    /// Sequence data appeared before the first `>` header line.
    DataBeforeHeader,
    /// A `>` line with nothing after it (truncated header).
    EmptyHeader,
    /// A header with no sequence lines before the next record or EOF.
    EmptySequence,
    /// A residue outside the target alphabet (non-IUPAC character).
    InvalidResidue,
}

impl FastaIssue {
    /// Stable short label (used in quarantine reports and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            FastaIssue::DataBeforeHeader => "data-before-header",
            FastaIssue::EmptyHeader => "empty-header",
            FastaIssue::EmptySequence => "empty-sequence",
            FastaIssue::InvalidResidue => "invalid-residue",
        }
    }

    /// All issue kinds, in report order.
    pub const ALL: [FastaIssue; 4] = [
        FastaIssue::DataBeforeHeader,
        FastaIssue::EmptyHeader,
        FastaIssue::EmptySequence,
        FastaIssue::InvalidResidue,
    ];
}

/// Errors produced while parsing, encoding or generating sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A residue character does not belong to the target alphabet.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Byte offset within the sequence (0-based).
        position: usize,
    },
    /// A FASTA stream violated the format (e.g. data before the first header).
    Fasta {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Machine-readable classification of the problem.
        kind: FastaIssue,
        /// Human-readable description.
        msg: String,
    },
    /// A substitution-matrix file could not be parsed.
    Matrix(String),
    /// An empty sequence where a non-empty one is required.
    EmptySequence,
    /// A binary artifact (snapshot section, checkpoint payload) failed
    /// integrity verification — the bytes were read fine but do not
    /// checksum to what the file promises.
    Corrupt {
        /// Which section failed (e.g. `"residues"`, `"offsets"`).
        section: String,
        /// What exactly mismatched.
        detail: String,
    },
    /// Underlying I/O failure (stringified to keep the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidResidue { byte, position } => {
                if byte.is_ascii_graphic() {
                    write!(
                        f,
                        "invalid residue '{}' at position {position}",
                        *byte as char
                    )
                } else {
                    write!(
                        f,
                        "invalid residue byte 0x{byte:02x} at position {position}"
                    )
                }
            }
            SeqError::Fasta { line, msg, .. } => {
                write!(f, "FASTA parse error at line {line}: {msg}")
            }
            SeqError::Matrix(msg) => write!(f, "substitution matrix parse error: {msg}"),
            SeqError::EmptySequence => write!(f, "empty sequence"),
            SeqError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_residue_printable() {
        let e = SeqError::InvalidResidue {
            byte: b'!',
            position: 7,
        };
        assert_eq!(e.to_string(), "invalid residue '!' at position 7");
    }

    #[test]
    fn display_invalid_residue_nonprintable() {
        let e = SeqError::InvalidResidue {
            byte: 0x01,
            position: 0,
        };
        assert!(e.to_string().contains("0x01"));
    }

    #[test]
    fn display_fasta() {
        let e = SeqError::Fasta {
            line: 3,
            kind: FastaIssue::EmptyHeader,
            msg: "bad header".into(),
        };
        assert_eq!(e.to_string(), "FASTA parse error at line 3: bad header");
    }

    #[test]
    fn display_corrupt_names_section() {
        let e = SeqError::Corrupt {
            section: "residues".into(),
            detail: "CRC mismatch".into(),
        };
        assert_eq!(e.to_string(), "corrupt residues: CRC mismatch");
    }

    #[test]
    fn fasta_issue_labels_are_distinct() {
        let labels: Vec<&str> = FastaIssue::ALL.iter().map(|i| i.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SeqError = io.into();
        assert!(matches!(e, SeqError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}
