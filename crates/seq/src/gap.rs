//! Affine gap penalties — Equation 5 of the paper: `g(x) = q + r·x`.
//!
//! `q` is the gap-*open* penalty and `r` the gap-*extend* penalty, both
//! non-negative. The paper's evaluation uses `q = 10`, `r = 2`.
//!
//! Note the convention: a gap of length `x` costs `q + r·x`, i.e. the first
//! gapped residue already pays both `q` and one `r`. This matches the
//! recurrences in Eqs. 3–4 and is the convention of SSEARCH/SWIPE.

use serde::{Deserialize, Serialize};

/// Affine gap penalty parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GapPenalty {
    /// Gap-open penalty `q` (≥ 0); charged once per gap.
    pub open: i32,
    /// Gap-extension penalty `r` (≥ 0); charged once per gapped residue.
    pub extend: i32,
}

impl GapPenalty {
    /// Construct a gap model, validating non-negativity (Eq. 5 requires
    /// `q ≥ 0; r ≥ 0`).
    ///
    /// # Panics
    /// Panics if either penalty is negative.
    pub fn new(open: i32, extend: i32) -> Self {
        assert!(
            open >= 0,
            "gap open penalty must be non-negative, got {open}"
        );
        assert!(
            extend >= 0,
            "gap extend penalty must be non-negative, got {extend}"
        );
        GapPenalty { open, extend }
    }

    /// The paper's evaluation setting: open 10, extend 2.
    pub fn paper_default() -> Self {
        GapPenalty {
            open: 10,
            extend: 2,
        }
    }

    /// Total cost of a gap of length `x` (Eq. 5): `q + r·x`.
    #[inline]
    pub fn cost(&self, len: u32) -> i64 {
        self.open as i64 + self.extend as i64 * len as i64
    }

    /// Cost of *opening* a gap, i.e. the first gapped residue: `q + r`.
    ///
    /// This is the constant the DP recurrence subtracts when leaving the
    /// match state.
    #[inline]
    pub fn first(&self) -> i32 {
        self.open + self.extend
    }
}

impl Default for GapPenalty {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let g = GapPenalty::paper_default();
        assert_eq!(g.open, 10);
        assert_eq!(g.extend, 2);
    }

    #[test]
    fn cost_is_affine() {
        let g = GapPenalty::new(10, 2);
        assert_eq!(g.cost(1), 12);
        assert_eq!(g.cost(2), 14);
        assert_eq!(g.cost(5), 20);
        // Marginal cost of one more gapped residue is exactly `extend`.
        assert_eq!(g.cost(6) - g.cost(5), 2);
    }

    #[test]
    fn first_equals_cost_of_len_1() {
        let g = GapPenalty::new(7, 3);
        assert_eq!(g.first() as i64, g.cost(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_open_rejected() {
        GapPenalty::new(-1, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extend_rejected() {
        GapPenalty::new(1, -2);
    }

    #[test]
    fn zero_penalties_allowed() {
        let g = GapPenalty::new(0, 0);
        assert_eq!(g.cost(100), 0);
    }
}
