//! # sw-seq — biological sequence substrate
//!
//! Foundation crate for the `swhetero` workspace, the Rust reproduction of
//! Rucci et al., *"Smith-Waterman Algorithm on Heterogeneous Systems: A Case
//! Study"* (IEEE CLUSTER 2014).
//!
//! This crate owns everything that exists *before* an alignment starts:
//!
//! * [`alphabet`] — residue alphabets (20-letter amino acids plus ambiguity
//!   codes, nucleotides) and the dense `u8` encoding used by every kernel.
//! * [`sequence`] — encoded sequences and zero-copy views.
//! * [`fasta`] — a strict-but-forgiving FASTA reader/writer.
//! * [`matrices`] — substitution matrices: BLOSUM 45/50/62/80/90,
//!   PAM 30/70/250, identity/custom, and an NCBI-format text parser.
//! * [`gap`] — the affine gap model `g(x) = q + r·x` of the paper's Eq. 5.
//! * [`gen`] — synthetic protein database generator calibrated to the
//!   Swiss-Prot release 2013_11 summary statistics used by the paper.
//! * [`swissprot`] — constants describing that release and the paper's
//!   20-query evaluation set.
//!
//! The paper benchmarks against the real Swiss-Prot database, which is not
//! redistributable here; [`gen`] produces a database with the same sequence
//! count, residue count, length distribution tail and background residue
//! frequencies, which is what the evaluated metrics (GCUPS vs. threads,
//! query length, split ratio) actually depend on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alphabet;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod gap;
pub mod gen;
pub mod matrices;
pub mod sequence;
pub mod swissprot;
pub mod translate;

pub use alphabet::{Alphabet, AlphabetKind};
pub use error::{FastaIssue, SeqError};
pub use fasta::{
    read_encoded_quarantined, FastaReader, FastaRecord, FastaWriter, QuarantineReport,
};
pub use gap::GapPenalty;
pub use matrices::SubstMatrix;
pub use sequence::{EncodedSeq, SeqId, SeqView};
