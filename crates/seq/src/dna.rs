//! DNA-specific utilities.
//!
//! The paper's evaluation is protein search, but the introduction frames
//! SW in sequencing terms ("k is usually 11 for a DNA sequence"), and the
//! engine is alphabet-generic. This module supplies what a nucleotide
//! search needs on top of the [`crate::alphabet::Alphabet::dna`]
//! encoding: the reverse complement for minus-strand search, and scoring
//! matrices with ambiguous-base handling.

use crate::alphabet::Alphabet;
use crate::matrices::SubstMatrix;

/// Complement of an encoded DNA residue (`A↔T`, `C↔G`, `N→N`).
#[inline]
pub fn complement_code(code: u8) -> u8 {
    match code {
        0 => 3,         // A -> T
        1 => 2,         // C -> G
        2 => 1,         // G -> C
        3 => 0,         // T -> A
        other => other, // N and anything else stays put
    }
}

/// Reverse complement of an encoded DNA sequence.
pub fn reverse_complement(residues: &[u8]) -> Vec<u8> {
    residues.iter().rev().map(|&c| complement_code(c)).collect()
}

/// A DNA scoring matrix: `match`/`mismatch` over ACGT, with `N` scoring
/// `n_score` against everything (0 = neutral, negative = penalised).
///
/// The defaults (+5/−4, N = −2) are the classic BLASTN megablast-era
/// values.
pub fn dna_matrix(matches: i32, mismatch: i32, n_score: i32) -> SubstMatrix {
    let a = Alphabet::dna();
    let len = a.len();
    let mut scores = vec![mismatch; len * len];
    for i in 0..4 {
        scores[i * len + i] = matches;
    }
    let n = 4usize; // code of 'N'
    for i in 0..len {
        scores[n * len + i] = n_score;
        scores[i * len + n] = n_score;
    }
    SubstMatrix::from_flat(
        &format!("DNA({matches}/{mismatch},N={n_score})"),
        len,
        scores,
    )
}

/// The classic BLASTN scoring: +5/−4, N = −2.
pub fn blastn_default() -> SubstMatrix {
    dna_matrix(5, -4, -2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::dna().encode_strict(s).unwrap()
    }

    fn dec(codes: &[u8]) -> Vec<u8> {
        Alphabet::dna().decode(codes)
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(dec(&reverse_complement(&enc(b"ACGT"))), b"ACGT".to_vec());
        assert_eq!(dec(&reverse_complement(&enc(b"AAAA"))), b"TTTT".to_vec());
        assert_eq!(
            dec(&reverse_complement(&enc(b"GATTACA"))),
            b"TGTAATC".to_vec()
        );
        assert_eq!(dec(&reverse_complement(&enc(b"ACGN"))), b"NCGT".to_vec());
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s = enc(b"ACGTACGTNNGGCC");
        assert_eq!(reverse_complement(&reverse_complement(&s)), s);
    }

    #[test]
    fn dna_matrix_values() {
        let m = blastn_default();
        let a = Alphabet::dna();
        let (ac, gc, nc) = (
            a.encode_byte(b'A').unwrap(),
            a.encode_byte(b'G').unwrap(),
            a.encode_byte(b'N').unwrap(),
        );
        assert_eq!(m.score(ac, ac), 5);
        assert_eq!(m.score(ac, gc), -4);
        assert_eq!(m.score(nc, ac), -2);
        assert_eq!(m.score(nc, nc), -2);
        assert!(m.is_symmetric());
    }

    #[test]
    fn minus_strand_alignment_via_revcomp() {
        use crate::gap::GapPenalty;
        // A query that matches the minus strand of the subject: direct
        // alignment is poor, reverse-complement alignment is perfect.
        let query = enc(b"ACGTACGTACGTACCGGT");
        let subject = {
            let rc = reverse_complement(&query);
            let mut s = enc(b"TTTT");
            s.extend_from_slice(&rc);
            s.extend_from_slice(&enc(b"TTTT"));
            s
        };
        let params_matrix = blastn_default();
        let gap = GapPenalty::new(10, 2);
        let sw = |q: &[u8], s: &[u8]| -> i64 {
            // Local scalar SW (duplicated minimal logic not needed — use a
            // simple check through the matrix: delegated to sw-kernels in
            // integration tests; here verify profile-level consistency).
            let mut best = 0i64;
            let n = s.len();
            let mut h_row = vec![0i64; n + 1];
            let mut e_col = vec![i64::MIN / 4; n + 1];
            let first = gap.first() as i64;
            let ext = gap.extend as i64;
            for &qc in q {
                let mut h_diag = 0i64;
                let mut h_left = 0i64;
                let mut f = i64::MIN / 4;
                for j in 1..=n {
                    let up = h_row[j];
                    let e = (up - first).max(e_col[j] - ext);
                    f = (h_left - first).max(f - ext);
                    let h = (h_diag + params_matrix.score(qc, s[j - 1]) as i64)
                        .max(e)
                        .max(f)
                        .max(0);
                    h_diag = up;
                    e_col[j] = e;
                    h_row[j] = h;
                    h_left = h;
                    best = best.max(h);
                }
            }
            best
        };
        let plus = sw(&query, &subject);
        let minus = sw(&reverse_complement(&query), &subject);
        assert_eq!(minus, 18 * 5, "minus strand is a perfect 18-base match");
        assert!(plus < minus, "plus {plus} vs minus {minus}");
    }
}
