//! Constants describing the paper's evaluation data.
//!
//! §V-B of the paper: *"the experiments are performed with the Swiss-Prot
//! database (release 2013_11). This database comprises 192 480 382 amino
//! acids in 541 561 sequences with the largest sequence length equal to
//! 35 213. The 20 query protein sequences … were selected from the
//! aforementioned database … ranging in length from 144 to 5478."*
//!
//! The real database is not redistributable inside this repository, so
//! [`crate::gen`] synthesises one matching these summary statistics; this
//! module is the single source of truth for them.

/// Number of sequences in Swiss-Prot release 2013_11.
pub const SWISSPROT_2013_11_SEQS: u64 = 541_561;

/// Total residue count of Swiss-Prot release 2013_11.
pub const SWISSPROT_2013_11_RESIDUES: u64 = 192_480_382;

/// Longest sequence in the release (Titin, Q8WZ42-like entries).
pub const SWISSPROT_2013_11_MAX_LEN: u32 = 35_213;

/// Mean sequence length implied by the release statistics (≈ 355.4).
pub fn swissprot_mean_len() -> f64 {
    SWISSPROT_2013_11_RESIDUES as f64 / SWISSPROT_2013_11_SEQS as f64
}

/// One query of the paper's 20-protein evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// UniProt accession quoted in the paper.
    pub accession: &'static str,
    /// Sequence length in residues.
    pub len: u32,
}

/// The paper's query set (§V-B): 20 accessions, lengths 144–5478.
///
/// This is the standard benchmark query set introduced by the CUDASW++
/// papers and reused by SWIPE, SWAPHI and this paper; the lengths are the
/// published UniProt sequence lengths of each accession.
pub const QUERY_SET: [QuerySpec; 20] = [
    QuerySpec {
        accession: "P02232",
        len: 144,
    },
    QuerySpec {
        accession: "P05013",
        len: 189,
    },
    QuerySpec {
        accession: "P14942",
        len: 222,
    },
    QuerySpec {
        accession: "P07327",
        len: 375,
    },
    QuerySpec {
        accession: "P01008",
        len: 464,
    },
    QuerySpec {
        accession: "P03435",
        len: 567,
    },
    QuerySpec {
        accession: "P42357",
        len: 657,
    },
    QuerySpec {
        accession: "P21177",
        len: 729,
    },
    QuerySpec {
        accession: "Q38941",
        len: 850,
    },
    QuerySpec {
        accession: "P27895",
        len: 1000,
    },
    QuerySpec {
        accession: "P07756",
        len: 1500,
    },
    QuerySpec {
        accession: "P04775",
        len: 2005,
    },
    QuerySpec {
        accession: "P19096",
        len: 2504,
    },
    QuerySpec {
        accession: "P28167",
        len: 3005,
    },
    QuerySpec {
        accession: "P0C6B8",
        len: 3564,
    },
    QuerySpec {
        accession: "P20930",
        len: 4061,
    },
    QuerySpec {
        accession: "P08519",
        len: 4548,
    },
    QuerySpec {
        accession: "Q7TMA5",
        len: 4743,
    },
    QuerySpec {
        accession: "P33450",
        len: 5147,
    },
    QuerySpec {
        accession: "Q9UKN1",
        len: 5478,
    },
];

/// Background amino-acid frequencies of Swiss-Prot (fractions, sum ≈ 1).
///
/// Order matches the first 20 symbols of
/// [`crate::alphabet::PROTEIN_SYMBOLS`] (`ARNDCQEGHILKMFPSTWYV`). Values
/// are the UniProtKB/Swiss-Prot composition statistics; the synthetic
/// generator samples residues from this distribution so profile-lookup
/// behaviour (which depends on residue frequencies) matches the real
/// database.
pub const AA_BACKGROUND_FREQ: [f64; 20] = [
    0.0825, // A
    0.0553, // R
    0.0406, // N
    0.0545, // D
    0.0137, // C
    0.0393, // Q
    0.0675, // E
    0.0707, // G
    0.0227, // H
    0.0596, // I
    0.0966, // L
    0.0584, // K
    0.0242, // M
    0.0386, // F
    0.0470, // P
    0.0656, // S
    0.0534, // T
    0.0108, // W
    0.0292, // Y
    0.0687, // V
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_set_matches_paper_bounds() {
        assert_eq!(QUERY_SET.len(), 20);
        assert_eq!(QUERY_SET.first().unwrap().len, 144);
        assert_eq!(QUERY_SET.last().unwrap().len, 5478);
        // Sorted ascending by length, as the paper plots them.
        assert!(QUERY_SET.windows(2).all(|w| w[0].len < w[1].len));
    }

    #[test]
    fn mean_length_close_to_355() {
        let m = swissprot_mean_len();
        assert!((m - 355.4).abs() < 0.5, "mean = {m}");
    }

    #[test]
    fn background_frequencies_sum_to_one() {
        let sum: f64 = AA_BACKGROUND_FREQ.iter().sum();
        assert!((sum - 1.0).abs() < 0.02, "sum = {sum}");
    }

    #[test]
    fn all_accessions_unique() {
        let mut accs: Vec<_> = QUERY_SET.iter().map(|q| q.accession).collect();
        accs.sort_unstable();
        accs.dedup();
        assert_eq!(accs.len(), 20);
    }
}
