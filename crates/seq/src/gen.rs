//! Synthetic protein database generator calibrated to Swiss-Prot.
//!
//! The paper benchmarks against Swiss-Prot release 2013_11 (541 561
//! sequences, 192 480 382 residues, max length 35 213). That database
//! cannot be redistributed here, so this module synthesises a stand-in with
//! the same *performance-relevant* structure:
//!
//! * sequence **lengths** follow a log-normal distribution calibrated to
//!   the release's mean (≈ 355) with the empirical Swiss-Prot shape
//!   (σ ≈ 0.72), truncated to `[MIN_LEN, max_len]`, and the single longest
//!   sequence is pinned to exactly `max_len` — length distribution is what
//!   drives load balance, batching and cache behaviour;
//! * **residues** are drawn i.i.d. from the Swiss-Prot background
//!   frequencies ([`crate::swissprot::AA_BACKGROUND_FREQ`]) — residue
//!   composition is what drives profile-lookup behaviour.
//!
//! Generation is deterministic given the seed. DESIGN.md §2 documents this
//! substitution.

use crate::alphabet::Alphabet;
use crate::sequence::EncodedSeq;
use crate::swissprot::{self, QuerySpec, AA_BACKGROUND_FREQ, QUERY_SET};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Smallest sequence the generator will emit (Swiss-Prot's shortest
/// entries are short peptides of a few residues).
pub const MIN_LEN: u32 = 8;

/// Log-normal σ fitted to the Swiss-Prot length histogram.
const LENGTH_SIGMA: f64 = 0.72;

/// Parameters of a synthetic database.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbSpec {
    /// Number of sequences to generate.
    pub n_seqs: u32,
    /// Target mean sequence length.
    pub mean_len: f64,
    /// Maximum sequence length; the longest generated sequence is pinned
    /// to exactly this value (mirroring Swiss-Prot's single 35 213-residue
    /// titin entry).
    pub max_len: u32,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
}

impl DbSpec {
    /// The full Swiss-Prot 2013_11 scale (541 561 sequences — about 190 M
    /// residues). Only use this on machines with several GB of memory.
    pub fn swissprot_full(seed: u64) -> Self {
        DbSpec {
            n_seqs: swissprot::SWISSPROT_2013_11_SEQS as u32,
            mean_len: swissprot::swissprot_mean_len(),
            max_len: swissprot::SWISSPROT_2013_11_MAX_LEN,
            seed,
        }
    }

    /// A scaled-down Swiss-Prot: `fraction` of the sequence count with the
    /// same length distribution (max length scales with the square root of
    /// the fraction so small databases are not dominated by one huge
    /// outlier).
    pub fn swissprot_scaled(fraction: f64, seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = ((swissprot::SWISSPROT_2013_11_SEQS as f64 * fraction).round() as u32).max(1);
        let max = ((swissprot::SWISSPROT_2013_11_MAX_LEN as f64 * fraction.sqrt()).round() as u32)
            .max(MIN_LEN * 4);
        DbSpec {
            n_seqs: n,
            mean_len: swissprot::swissprot_mean_len(),
            max_len: max,
            seed,
        }
    }

    /// A tiny database for unit tests (deterministic, a few hundred
    /// sequences).
    pub fn tiny(seed: u64) -> Self {
        DbSpec {
            n_seqs: 200,
            mean_len: 120.0,
            max_len: 600,
            seed,
        }
    }
}

/// Deterministic synthetic protein generator.
pub struct SwissProtGen {
    rng: SmallRng,
    /// Cumulative residue distribution over the 20 standard amino acids.
    cum_freq: [f64; 20],
    /// μ of the length log-normal.
    mu: f64,
}

impl SwissProtGen {
    /// Create a generator for the given target mean length.
    pub fn new(mean_len: f64, seed: u64) -> Self {
        assert!(mean_len >= MIN_LEN as f64, "mean length too small");
        let mut cum = [0.0f64; 20];
        let mut acc = 0.0;
        let total: f64 = AA_BACKGROUND_FREQ.iter().sum();
        for (i, &f) in AA_BACKGROUND_FREQ.iter().enumerate() {
            acc += f / total;
            cum[i] = acc;
        }
        cum[19] = 1.0; // guard against floating-point shortfall
                       // E[lognormal(μ, σ)] = exp(μ + σ²/2)  ⇒  μ = ln(mean) − σ²/2.
        let mu = mean_len.ln() - LENGTH_SIGMA * LENGTH_SIGMA / 2.0;
        SwissProtGen {
            rng: SmallRng::seed_from_u64(seed),
            cum_freq: cum,
            mu,
        }
    }

    /// One standard-normal variate (Box–Muller; we only need the cosine
    /// branch).
    fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Sample one sequence length, truncated to `[MIN_LEN, max_len]`.
    pub fn sample_len(&mut self, max_len: u32) -> u32 {
        let z = self.std_normal();
        let l = (self.mu + LENGTH_SIGMA * z).exp();
        (l.round() as i64).clamp(MIN_LEN as i64, max_len as i64) as u32
    }

    /// Sample one encoded residue from the background distribution.
    #[inline]
    pub fn sample_residue(&mut self) -> u8 {
        let u: f64 = self.rng.gen();
        // 20 entries: a linear scan is faster than binary search at this size.
        for (code, &c) in self.cum_freq.iter().enumerate() {
            if u < c {
                return code as u8;
            }
        }
        19
    }

    /// Generate an encoded sequence of exactly `len` residues.
    pub fn sequence(&mut self, header: &str, len: u32) -> EncodedSeq {
        let residues = (0..len).map(|_| self.sample_residue()).collect();
        EncodedSeq {
            header: header.into(),
            residues,
        }
    }
}

/// Generate a full synthetic database per `spec`.
///
/// Headers follow the UniProt style: `syn|S0000001|SYNTH`.
pub fn generate_database(spec: &DbSpec) -> Vec<EncodedSeq> {
    let mut g = SwissProtGen::new(spec.mean_len, spec.seed);
    let mut out = Vec::with_capacity(spec.n_seqs as usize);
    let mut longest_idx = 0usize;
    let mut longest_len = 0u32;
    for i in 0..spec.n_seqs {
        let len = g.sample_len(spec.max_len);
        if len > longest_len {
            longest_len = len;
            longest_idx = i as usize;
        }
        out.push(g.sequence(&format!("syn|S{:07}|SYNTH", i + 1), len));
    }
    // Pin the longest sequence to exactly max_len (Swiss-Prot's titin).
    if let Some(seq) = out.get_mut(longest_idx) {
        if seq.residues.len() < spec.max_len as usize {
            let extra = spec.max_len as usize - seq.residues.len();
            seq.residues.extend((0..extra).map(|_| g.sample_residue()));
        }
    }
    out
}

/// Generate only the sequence *lengths* of a database per `spec` — the
/// cheap path for full-scale performance simulation, where residue content
/// is irrelevant and 190 M residues need not be materialised.
///
/// Uses the same length distribution as [`generate_database`] (including
/// pinning the longest sequence to `max_len`), but is **not** guaranteed to
/// produce the identical per-sequence lengths, because the full generator
/// interleaves residue sampling with length sampling.
pub fn generate_lengths(spec: &DbSpec) -> Vec<u32> {
    let mut g = SwissProtGen::new(spec.mean_len, spec.seed);
    let mut out: Vec<u32> = (0..spec.n_seqs)
        .map(|_| g.sample_len(spec.max_len))
        .collect();
    if let Some(m) = out.iter_mut().max() {
        *m = spec.max_len;
    }
    out
}

/// Generate the paper's 20-query evaluation set (same accession labels and
/// lengths as §V-B, synthetic residues).
pub fn generate_query_set(seed: u64) -> Vec<EncodedSeq> {
    let mut g = SwissProtGen::new(swissprot::swissprot_mean_len(), seed ^ 0x5157_5345_5421);
    QUERY_SET
        .iter()
        .map(|QuerySpec { accession, len }| g.sequence(&format!("sp|{accession}|QUERY"), *len))
        .collect()
}

/// Generate a single synthetic query of the given length.
pub fn generate_query(len: u32, seed: u64) -> EncodedSeq {
    let mut g = SwissProtGen::new(swissprot::swissprot_mean_len(), seed);
    g.sequence(&format!("syn|QUERY{len}|SYNTH"), len)
}

/// Validate that generated residues decode under the protein alphabet
/// (debug helper used by tests and examples).
pub fn decodes_cleanly(seqs: &[EncodedSeq]) -> bool {
    let a = Alphabet::protein();
    seqs.iter()
        .all(|s| s.residues.iter().all(|&r| (r as usize) < a.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = DbSpec::tiny(7);
        let a = generate_database(&spec);
        let b = generate_database(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_database(&DbSpec::tiny(1));
        let b = generate_database(&DbSpec::tiny(2));
        assert_ne!(a, b);
    }

    #[test]
    fn lengths_within_bounds() {
        let spec = DbSpec::tiny(3);
        let db = generate_database(&spec);
        assert_eq!(db.len(), spec.n_seqs as usize);
        for s in &db {
            assert!(s.len() >= MIN_LEN as usize);
            assert!(s.len() <= spec.max_len as usize);
        }
    }

    #[test]
    fn longest_sequence_pinned_to_max() {
        let spec = DbSpec {
            n_seqs: 500,
            mean_len: 355.4,
            max_len: 2000,
            seed: 11,
        };
        let db = generate_database(&spec);
        let max = db.iter().map(EncodedSeq::len).max().unwrap();
        assert_eq!(max, spec.max_len as usize);
    }

    #[test]
    fn mean_length_close_to_target() {
        let spec = DbSpec {
            n_seqs: 20_000,
            mean_len: 355.4,
            max_len: 35_213,
            seed: 5,
        };
        let db = generate_database(&spec);
        let total: usize = db.iter().map(EncodedSeq::len).sum();
        let mean = total as f64 / db.len() as f64;
        // Truncation biases the mean slightly; ±10 % is the contract.
        assert!((mean - 355.4).abs() / 355.4 < 0.10, "mean = {mean}");
    }

    #[test]
    fn residue_composition_close_to_background() {
        let mut g = SwissProtGen::new(355.4, 9);
        let mut counts = [0u64; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[g.sample_residue() as usize] += 1;
        }
        for (code, &freq) in AA_BACKGROUND_FREQ.iter().enumerate() {
            let observed = counts[code] as f64 / n as f64;
            assert!(
                (observed - freq).abs() < 0.01,
                "residue {code}: observed {observed:.4}, expected {freq:.4}"
            );
        }
    }

    #[test]
    fn residues_are_standard_amino_acids() {
        let db = generate_database(&DbSpec::tiny(1));
        assert!(decodes_cleanly(&db));
        // Only the 20 standard residues are generated (no B/Z/X/*).
        assert!(db.iter().all(|s| s.residues.iter().all(|&r| r < 20)));
    }

    #[test]
    fn query_set_has_paper_lengths() {
        let qs = generate_query_set(42);
        assert_eq!(qs.len(), 20);
        for (q, spec) in qs.iter().zip(QUERY_SET.iter()) {
            assert_eq!(q.len(), spec.len as usize);
            assert!(q.header.contains(spec.accession));
        }
    }

    #[test]
    fn scaled_spec_shrinks() {
        let s = DbSpec::swissprot_scaled(0.01, 1);
        assert_eq!(s.n_seqs, 5416);
        assert!(s.max_len < swissprot::SWISSPROT_2013_11_MAX_LEN);
        assert!(s.max_len > 1000);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_zero() {
        DbSpec::swissprot_scaled(0.0, 1);
    }

    #[test]
    fn lengths_only_path_matches_distribution() {
        let spec = DbSpec {
            n_seqs: 20_000,
            mean_len: 355.4,
            max_len: 35_213,
            seed: 5,
        };
        let lens = generate_lengths(&spec);
        assert_eq!(lens.len(), 20_000);
        let mean = lens.iter().map(|&l| l as u64).sum::<u64>() as f64 / lens.len() as f64;
        assert!((mean - 355.4).abs() / 355.4 < 0.10, "mean = {mean}");
        assert_eq!(*lens.iter().max().unwrap(), spec.max_len);
        assert!(lens.iter().all(|&l| l >= MIN_LEN));
    }

    #[test]
    fn lengths_deterministic() {
        let spec = DbSpec::tiny(9);
        assert_eq!(generate_lengths(&spec), generate_lengths(&spec));
    }

    #[test]
    fn single_query_generation() {
        let q = generate_query(144, 3);
        assert_eq!(q.len(), 144);
        let q2 = generate_query(144, 3);
        assert_eq!(q, q2);
    }
}
