//! Working-set spill model — the mechanism behind the blocking study
//! (Fig. 7).
//!
//! The unblocked inter-task kernel keeps two `M`-long vector columns live
//! (`H` and `F`): `4·M·L` bytes, touched once per subject position. While
//! that fits the per-core L2, every access hits; once it spills, a
//! fraction of accesses stream from the next level — the 20 MB L3 on the
//! Xeon (mild penalty) or GDDR5 on the Phi (no L3: severe penalty).
//!
//! The model is deliberately first-order: the *spill fraction* is the
//! share of the working set that cannot be cache-resident, and each
//! spilled vector iteration pays the device's `spill_penalty_cpv` extra
//! cycles. Blocked kernels size their tile so the working set always
//! fits (see `sw_kernels::blocked::block_rows_for_cache`), eliminating
//! the term.

use crate::model::DeviceSpec;

/// Working set of the unblocked kernel for a query of `m` residues at
/// `lanes` lanes: H + F columns of i16 vectors.
pub fn working_set_bytes(m: usize, lanes: usize) -> u64 {
    (4 * m * lanes) as u64
}

/// Fraction of DP accesses that spill past L2 (0.0 when the working set
/// fits; asymptotically approaches 1 as the set grows).
///
/// `threads_sharing` is the number of hardware threads resident on the
/// core: they *share* the L2, so each thread's effective capacity is
/// `l2 / threads_sharing`. This is why the Phi (4 threads/core on
/// 512 KB) starts spilling at much shorter queries than its nominal L2
/// size suggests — and a second reason Fig. 7 hits it harder.
pub fn spill_fraction(device: &DeviceSpec, working_set: u64, threads_sharing: u32) -> f64 {
    let l2 = device.l2_bytes as u64 / threads_sharing.max(1) as u64;
    if working_set <= l2 {
        0.0
    } else {
        (working_set - l2) as f64 / working_set as f64
    }
}

/// Extra cycles per vector iteration charged to the unblocked kernel.
pub fn spill_extra_cpv(
    device: &DeviceSpec,
    m: usize,
    lanes: usize,
    threads_sharing: u32,
    penalty_cpv: f64,
) -> f64 {
    let f = spill_fraction(device, working_set_bytes(m, lanes), threads_sharing);
    // With an LLC behind L2 (Xeon), half the penalty is absorbed there;
    // without one (Phi), the full penalty applies.
    let absorb = if device.llc_bytes > 0 { 0.5 } else { 1.0 };
    f * penalty_cpv * absorb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn working_set_formula() {
        // Paper's longest query at Phi lanes: 5478 × 32 × 4 = 701 184 B.
        assert_eq!(working_set_bytes(5478, 32), 701_184);
        // Same query at Xeon lanes: 350 592 B.
        assert_eq!(working_set_bytes(5478, 16), 350_592);
    }

    #[test]
    fn short_queries_never_spill() {
        let xeon = presets::xeon_e5_2670_pair();
        let phi = presets::xeon_phi_60c();
        // The paper's shortest query (144) fits both devices easily, even
        // with every hardware thread resident.
        assert_eq!(spill_fraction(&xeon, working_set_bytes(144, 16), 2), 0.0);
        assert_eq!(spill_fraction(&phi, working_set_bytes(144, 32), 4), 0.0);
    }

    #[test]
    fn long_queries_spill_both_devices() {
        let xeon = presets::xeon_e5_2670_pair();
        let phi = presets::xeon_phi_60c();
        let fx = spill_fraction(&xeon, working_set_bytes(5478, 16), 2);
        let fp = spill_fraction(&phi, working_set_bytes(5478, 32), 4);
        assert!(fx > 0.5 && fx < 0.75, "xeon spill {fx}");
        assert!(fp > 0.7 && fp < 0.9, "phi spill {fp}");
    }

    #[test]
    fn l2_sharing_advances_the_spill_point() {
        // 4 threads/core quarter the per-thread capacity: a query that
        // fits a lone thread spills when siblings are resident.
        let phi = presets::xeon_phi_60c();
        let m = 3000; // 4·3000·32 = 384 KB < 512 KB but > 128 KB
        assert_eq!(spill_fraction(&phi, working_set_bytes(m, 32), 1), 0.0);
        assert!(spill_fraction(&phi, working_set_bytes(m, 32), 4) > 0.5);
    }

    #[test]
    fn phi_pays_more_than_xeon_for_same_spill() {
        // Fig. 7's asymmetry: the Phi has no LLC and a larger per-miss
        // penalty.
        let xeon = presets::xeon_e5_2670_pair();
        let phi = presets::xeon_phi_60c();
        let x = spill_extra_cpv(&xeon, 5478, 16, 2, presets::xeon_costs().spill_penalty_cpv);
        let p = spill_extra_cpv(&phi, 5478, 32, 4, presets::phi_costs().spill_penalty_cpv);
        assert!(p > 3.0 * x, "phi extra {p} must dwarf xeon extra {x}");
    }

    #[test]
    fn spill_fraction_monotone() {
        let phi = presets::xeon_phi_60c();
        let mut last = -1.0;
        for m in [100, 1000, 4000, 5478, 20000, 35213] {
            let f = spill_fraction(&phi, working_set_bytes(m, 32), 4);
            assert!(f >= last);
            assert!(f < 1.0);
            last = f;
        }
    }
}
