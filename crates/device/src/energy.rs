//! TDP-based energy model — the paper's stated future work.
//!
//! §V-C3: *"From the point of view of power consumption we would suggest
//! that it seems appropriate to explore others configurations with lower
//! consumption since the TDP on Intel's Xeon chip is 120 watts meanwhile
//! the Xeon-Phi is 240 watts … As future work we are considering
//! undertaking this study."* — this module undertakes it.
//!
//! The model is the standard first-order one used in post-hoc accelerator
//! studies: a device draws `idle_fraction × TDP` when idle and full TDP
//! when busy. Energy of a heterogeneous run integrates both devices over
//! the wall-clock of the run.

use crate::model::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Fraction of TDP drawn at idle (clock-gated but powered).
pub const IDLE_FRACTION: f64 = 0.3;

/// Energy accounting for one device over one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceEnergy {
    /// Seconds the device was computing.
    pub busy_s: f64,
    /// Seconds the device sat idle within the run's wall-clock.
    pub idle_s: f64,
    /// Joules consumed.
    pub joules: f64,
}

/// Compute the energy a device draws during a run of `wall_s` seconds of
/// which it was busy for `busy_s`.
///
/// # Panics
/// Panics if `busy_s > wall_s` (beyond rounding) or either is negative.
pub fn device_energy(device: &DeviceSpec, busy_s: f64, wall_s: f64) -> DeviceEnergy {
    assert!(busy_s >= 0.0 && wall_s >= 0.0, "times must be non-negative");
    assert!(
        busy_s <= wall_s * (1.0 + 1e-9),
        "busy time cannot exceed wall time"
    );
    let idle_s = (wall_s - busy_s).max(0.0);
    let joules = device.tdp_watts * (busy_s + IDLE_FRACTION * idle_s);
    DeviceEnergy {
        busy_s,
        idle_s,
        joules,
    }
}

/// Combined efficiency report of a (possibly heterogeneous) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total joules across all devices.
    pub total_joules: f64,
    /// Average power draw over the run (W).
    pub avg_watts: f64,
    /// Throughput in GCUPS.
    pub gcups: f64,
    /// The figure of merit: GCUPS per watt.
    pub gcups_per_watt: f64,
}

impl EnergyReport {
    /// Build a report from per-device energies, the run's wall-clock and
    /// the real cell count processed.
    ///
    /// # Panics
    /// Panics if `wall_s` is not positive.
    pub fn from_devices(energies: &[DeviceEnergy], wall_s: f64, real_cells: u64) -> Self {
        assert!(wall_s > 0.0, "wall time must be positive");
        let total_joules: f64 = energies.iter().map(|e| e.joules).sum();
        let avg_watts = total_joules / wall_s;
        let gcups = real_cells as f64 / wall_s / 1e9;
        EnergyReport {
            total_joules,
            avg_watts,
            gcups,
            gcups_per_watt: gcups / avg_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn busy_device_draws_full_tdp() {
        let phi = presets::xeon_phi_60c();
        let e = device_energy(&phi, 10.0, 10.0);
        assert!((e.joules - 2400.0).abs() < 1e-6);
        assert_eq!(e.idle_s, 0.0);
    }

    #[test]
    fn idle_device_draws_idle_fraction() {
        let xeon = presets::xeon_e5_2670_pair();
        let e = device_energy(&xeon, 0.0, 10.0);
        assert!((e.joules - 240.0 * 0.3 * 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "busy time cannot exceed")]
    fn busy_beyond_wall_rejected() {
        device_energy(&presets::xeon_phi_60c(), 11.0, 10.0);
    }

    #[test]
    fn report_combines_devices() {
        let xeon = presets::xeon_e5_2670_pair();
        let phi = presets::xeon_phi_60c();
        let wall = 100.0;
        let ex = device_energy(&xeon, 100.0, wall);
        let ep = device_energy(&phi, 95.0, wall);
        // 6.26e12 cells in 100 s = 62.6 GCUPS (the paper's combined rate).
        let r = EnergyReport::from_devices(&[ex, ep], wall, 6_260_000_000_000);
        assert!((r.gcups - 62.6).abs() < 1e-6);
        assert!(
            r.avg_watts > 400.0 && r.avg_watts < 480.0,
            "avg {}",
            r.avg_watts
        );
        assert!(r.gcups_per_watt > 0.12 && r.gcups_per_watt < 0.15);
    }

    #[test]
    fn cpu_only_beats_hetero_in_efficiency_when_phi_idles() {
        // The paper's hypothesis: per-watt, configurations matter. A
        // CPU-only run (Phi fully idle) vs a balanced run.
        let xeon = presets::xeon_e5_2670_pair();
        let phi = presets::xeon_phi_60c();
        // CPU-only: 30.4 GCUPS, Phi idles.
        let wall_cpu = 100.0;
        let cpu_only = EnergyReport::from_devices(
            &[
                device_energy(&xeon, wall_cpu, wall_cpu),
                device_energy(&phi, 0.0, wall_cpu),
            ],
            wall_cpu,
            3_040_000_000_000,
        );
        // Hetero: 62.6 GCUPS over 48.6 s for the same work.
        let wall_het = 3_040_000_000_000.0 / 62.6e9;
        let hetero = EnergyReport::from_devices(
            &[
                device_energy(&xeon, wall_het, wall_het),
                device_energy(&phi, wall_het * 0.95, wall_het),
            ],
            wall_het,
            3_040_000_000_000,
        );
        // Hetero finishes 2× sooner; with the Phi's TDP that still wins
        // energy here because the idle Phi burns 30 % TDP anyway.
        assert!(hetero.total_joules < cpu_only.total_joules);
        assert!(hetero.gcups_per_watt > 0.8 * cpu_only.gcups_per_watt);
    }
}
