//! The analytic per-task cost model — how simulated GCUPS are produced.
//!
//! For one task (one query × one lane batch) the model charges:
//!
//! ```text
//! seconds(task) = dispatch_overhead
//!               + [SP only] |Σ|·N_pad·L · build_cyc   / thread_GHz
//!               + M·N_pad · (cpv + spill_extra)       / thread_GHz
//! ```
//!
//! where `cpv` is the calibrated cycles-per-vector-iteration of the
//! kernel variant on the device (see [`crate::presets`] for the
//! calibration rationale), `spill_extra` is the cache model's surcharge
//! for unblocked kernels ([`crate::cache`]), and `thread_GHz` is the
//! effective clock one worker thread of the chosen placement receives
//! (SMT issue efficiency × memory-contention scaling, [`crate::model`]).
//!
//! The scalar `no-vec` variants process sequences one at a time, so they
//! are charged per *real* cell with no lane padding.
//!
//! Feeding these per-task times into the discrete-event scheduler of
//! `sw-sched` reproduces the thread-scaling, query-length, blocking and
//! split-ratio shapes of the paper's Figs. 3–8.

use crate::cache;
use crate::model::{DeviceSpec, ThreadPlacement};
use serde::{Deserialize, Serialize};
use sw_kernels::{KernelVariant, ProfileMode, Vectorization};

/// Calibrated kernel cost constants of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCosts {
    /// Scalar cycles per cell, `no-vec` + query profile.
    pub cps_novec_qp: f64,
    /// Scalar cycles per cell, `no-vec` + sequence profile.
    pub cps_novec_sp: f64,
    /// Cycles per vector iteration, guided vectorization + QP.
    pub cpv_simd_qp: f64,
    /// Cycles per vector iteration, guided vectorization + SP.
    pub cpv_simd_sp: f64,
    /// Cycles per vector iteration, intrinsics + QP (gather-bound).
    pub cpv_intr_qp: f64,
    /// Cycles per vector iteration, intrinsics + SP.
    pub cpv_intr_sp: f64,
    /// Cycles per sequence-profile build operation (|Σ|·N·L of them).
    pub sp_build_cyc_per_op: f64,
    /// Cycles per query-profile build operation (|Q|·|Σ| of them, once
    /// per query — amortised over the whole database search).
    pub qp_build_cyc_per_op: f64,
    /// Per-task scheduling/dispatch overhead in seconds (OpenMP dynamic
    /// chunk acquisition).
    pub dispatch_overhead_s: f64,
    /// Extra cycles per vector iteration when the working set fully
    /// spills L2 (scaled by the spill fraction; see [`crate::cache`]).
    pub spill_penalty_cpv: f64,
}

/// Shape of one task: one query against one lane batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskShape {
    /// Query length `M`.
    pub query_len: usize,
    /// Padded batch length `N_pad`.
    pub padded_len: usize,
    /// Vector lanes `L`.
    pub lanes: usize,
    /// Real cells (GCUPS numerator).
    pub real_cells: u64,
}

impl TaskShape {
    /// Padded cells actually computed.
    pub fn padded_cells(&self) -> u64 {
        self.query_len as u64 * self.padded_len as u64 * self.lanes as u64
    }
}

/// A device plus its calibrated kernel costs.
///
/// ```
/// use sw_device::CostModel;
/// use sw_kernels::KernelVariant;
///
/// // The paper's devices, with costs calibrated to its published peaks.
/// let xeon = CostModel::xeon();
/// let phi = CostModel::phi();
/// let v = KernelVariant::best(); // intrinsic-SP, blocked
/// let x = xeon.peak_gcups(v, 32, 2000);
/// let p = phi.peak_gcups(v, 240, 2000);
/// assert!((x - 30.4).abs() < 1.5); // paper: 30.4 GCUPS
/// assert!((p - 34.9).abs() < 1.8); // paper: 34.9 GCUPS
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The device being modelled.
    pub device: DeviceSpec,
    /// Its calibrated constants.
    pub costs: KernelCosts,
}

impl CostModel {
    /// Bundle a device with its costs.
    pub fn new(device: DeviceSpec, costs: KernelCosts) -> Self {
        CostModel { device, costs }
    }

    /// The paper's host CPU with calibrated constants.
    pub fn xeon() -> Self {
        CostModel::new(
            crate::presets::xeon_e5_2670_pair(),
            crate::presets::xeon_costs(),
        )
    }

    /// The paper's coprocessor with calibrated constants.
    pub fn phi() -> Self {
        CostModel::new(crate::presets::xeon_phi_60c(), crate::presets::phi_costs())
    }

    /// Cycles-per-vector-iteration for a variant (ignoring cache effects),
    /// and the effective lane count (1 for scalar code).
    pub fn base_cpv(&self, variant: KernelVariant) -> (f64, usize) {
        let c = &self.costs;
        match (variant.vec, variant.profile) {
            (Vectorization::NoVec, ProfileMode::Query) => (c.cps_novec_qp, 1),
            (Vectorization::NoVec, ProfileMode::Sequence) => (c.cps_novec_sp, 1),
            (Vectorization::Guided, ProfileMode::Query) => (c.cpv_simd_qp, self.device.lanes_i16()),
            (Vectorization::Guided, ProfileMode::Sequence) => {
                (c.cpv_simd_sp, self.device.lanes_i16())
            }
            (Vectorization::Intrinsic, ProfileMode::Query) => {
                (c.cpv_intr_qp, self.device.lanes_i16())
            }
            (Vectorization::Intrinsic, ProfileMode::Sequence) => {
                (c.cpv_intr_sp, self.device.lanes_i16())
            }
        }
    }

    /// Effective cycles-per-vector-iteration including the cache surcharge
    /// for unblocked kernels. `threads_per_core` matters because resident
    /// hardware threads share the core's L2.
    pub fn effective_cpv(
        &self,
        variant: KernelVariant,
        query_len: usize,
        threads_per_core: u32,
    ) -> (f64, usize) {
        let (mut cpv, lanes) = self.base_cpv(variant);
        if !variant.blocking && lanes > 1 {
            cpv += cache::spill_extra_cpv(
                &self.device,
                query_len,
                lanes,
                threads_per_core,
                self.costs.spill_penalty_cpv,
            );
        }
        debug_assert!(cpv.is_finite(), "cpv must be finite");
        (cpv, lanes)
    }

    /// Single-thread compute cycles of one task (no dispatch overhead).
    pub fn task_cycles(
        &self,
        variant: KernelVariant,
        shape: &TaskShape,
        threads_per_core: u32,
    ) -> f64 {
        let (cpv, lanes) = self.effective_cpv(variant, shape.query_len, threads_per_core);
        let dp = if lanes == 1 {
            // Scalar path: per real cell, no padding waste.
            shape.real_cells as f64 * cpv
        } else {
            // Vector path: one iteration per (i, j) over the padded batch.
            (shape.query_len as u64 * shape.padded_len as u64) as f64 * cpv
        };
        let build = match variant.profile {
            ProfileMode::Sequence => {
                // |Σ|·N_pad·L per batch; the scalar SP variant builds a
                // 1-lane profile per sequence — same op count per residue.
                let ops =
                    24.0 * shape.padded_len as f64 * if lanes == 1 { 1.0 } else { lanes as f64 };
                ops * self.costs.sp_build_cyc_per_op
            }
            ProfileMode::Query => 0.0, // built once per query, amortised away
        };
        dp + build
    }

    /// Wall-clock seconds one worker of `placement` needs for one task.
    pub fn task_seconds(
        &self,
        variant: KernelVariant,
        shape: &TaskShape,
        placement: ThreadPlacement,
    ) -> f64 {
        let ghz = self.device.per_thread_ghz(placement);
        self.costs.dispatch_overhead_s
            + self.task_cycles(variant, shape, placement.threads_per_core) / (ghz * 1e9)
    }

    /// Throughput upper bound of the whole device in GCUPS — what perfect
    /// scheduling with zero overhead would reach on long queries.
    pub fn peak_gcups(&self, variant: KernelVariant, threads: u32, query_len: usize) -> f64 {
        let placement = self.device.place_threads(threads);
        let (cpv, lanes) = self.effective_cpv(variant, query_len, placement.threads_per_core);
        self.device.effective_ghz(placement) * lanes as f64 / cpv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variant(vec: Vectorization, profile: ProfileMode) -> KernelVariant {
        KernelVariant {
            vec,
            profile,
            blocking: true,
        }
    }

    /// The calibration contract: simulated peaks must land on the paper's
    /// published numbers within a few percent.
    #[test]
    fn xeon_peaks_match_paper() {
        let m = CostModel::xeon();
        let sp = m.peak_gcups(
            variant(Vectorization::Intrinsic, ProfileMode::Sequence),
            32,
            2000,
        );
        assert!(
            (sp - 30.4).abs() / 30.4 < 0.05,
            "intrinsic-SP {sp} vs paper 30.4"
        );
        let simd_sp = m.peak_gcups(
            variant(Vectorization::Guided, ProfileMode::Sequence),
            32,
            2000,
        );
        assert!(
            (simd_sp - 25.1).abs() / 25.1 < 0.05,
            "simd-SP {simd_sp} vs paper 25.1"
        );
        let novec = m.peak_gcups(
            variant(Vectorization::NoVec, ProfileMode::Sequence),
            32,
            2000,
        );
        assert!(
            novec < 3.0,
            "no-vec must 'hardly offer performance': {novec}"
        );
    }

    #[test]
    fn phi_peaks_match_paper() {
        let m = CostModel::phi();
        let cases = [
            (Vectorization::Intrinsic, ProfileMode::Sequence, 34.9),
            (Vectorization::Intrinsic, ProfileMode::Query, 27.1),
            (Vectorization::Guided, ProfileMode::Sequence, 14.5),
            (Vectorization::Guided, ProfileMode::Query, 13.6),
        ];
        for (vec, prof, paper) in cases {
            let got = m.peak_gcups(variant(vec, prof), 240, 2000);
            assert!(
                (got - paper).abs() / paper < 0.05,
                "{vec:?}-{prof:?}: {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn hetero_sum_matches_62_6() {
        // Fig. 8: combined ≈ 62.6 GCUPS = 30.4 + 34.9 (minus small overheads).
        let x = CostModel::xeon().peak_gcups(
            variant(Vectorization::Intrinsic, ProfileMode::Sequence),
            32,
            2000,
        );
        let p = CostModel::phi().peak_gcups(
            variant(Vectorization::Intrinsic, ProfileMode::Sequence),
            240,
            2000,
        );
        let total = x + p;
        assert!(
            (total - 62.6).abs() / 62.6 < 0.05,
            "combined {total} vs paper 62.6"
        );
    }

    #[test]
    fn hyperthreading_gain_matches_efficiency_quote() {
        // §V-C1: efficiency 88 % at 16 threads, 70 % at 32 (relative to
        // linear scaling of one thread).
        let m = CostModel::xeon();
        let v = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
        let g1 = m.peak_gcups(v, 1, 2000);
        let g16 = m.peak_gcups(v, 16, 2000);
        let g32 = m.peak_gcups(v, 32, 2000);
        let e16 = g16 / (16.0 * g1);
        let e32 = g32 / (32.0 * g1);
        assert!((e16 - 0.88).abs() < 0.03, "e16 = {e16}");
        assert!((e32 - 0.70).abs() < 0.03, "e32 = {e32}");
    }

    #[test]
    fn phi_needs_multiple_threads_per_core() {
        // 60 threads (1/core) must be well under half of 240 threads'
        // throughput: the in-order core can't fill its pipeline alone.
        let m = CostModel::phi();
        let v = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
        let g60 = m.peak_gcups(v, 60, 2000);
        let g240 = m.peak_gcups(v, 240, 2000);
        assert!(g60 < 0.55 * g240, "g60 {g60} vs g240 {g240}");
    }

    #[test]
    fn blocking_only_matters_for_long_queries() {
        let m = CostModel::phi();
        let blocked = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
        let unblocked = KernelVariant {
            blocking: false,
            ..blocked
        };
        let short_b = m.peak_gcups(blocked, 240, 144);
        let short_u = m.peak_gcups(unblocked, 240, 144);
        assert!(
            (short_b - short_u).abs() < 1e-9,
            "short queries: no difference"
        );
        let long_b = m.peak_gcups(blocked, 240, 5478);
        let long_u = m.peak_gcups(unblocked, 240, 5478);
        assert!(
            long_u < 0.85 * long_b,
            "Fig 7: unblocked {long_u} vs blocked {long_b}"
        );
    }

    #[test]
    fn blocking_gap_larger_on_phi_than_xeon() {
        let v = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
        let u = KernelVariant {
            blocking: false,
            ..v
        };
        let xeon = CostModel::xeon();
        let phi = CostModel::phi();
        let xeon_ratio = xeon.peak_gcups(u, 32, 5478) / xeon.peak_gcups(v, 32, 5478);
        let phi_ratio = phi.peak_gcups(u, 240, 5478) / phi.peak_gcups(v, 240, 5478);
        assert!(
            phi_ratio < xeon_ratio,
            "phi must lose more from no blocking: phi {phi_ratio} xeon {xeon_ratio}"
        );
    }

    #[test]
    fn task_seconds_includes_dispatch_and_build() {
        let m = CostModel::xeon();
        let shape = TaskShape {
            query_len: 500,
            padded_len: 400,
            lanes: 16,
            real_cells: 500 * 400 * 16,
        };
        let p = m.device.place_threads(32);
        let sp = m.task_seconds(
            variant(Vectorization::Intrinsic, ProfileMode::Sequence),
            &shape,
            p,
        );
        let qp = m.task_seconds(
            variant(Vectorization::Intrinsic, ProfileMode::Query),
            &shape,
            p,
        );
        assert!(sp > 0.0 && qp > 0.0);
        // SP pays the per-batch profile build, but its lower cpv wins for
        // this query length on the Xeon.
        assert!(sp < qp);
    }

    #[test]
    fn sp_build_overhead_hurts_short_queries() {
        // Fig. 4/6's rising SP curves: throughput(M) grows with M because
        // the per-batch build amortises.
        let m = CostModel::phi();
        let v = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
        let p = m.device.place_threads(240);
        let rate = |ql: usize| {
            let shape = TaskShape {
                query_len: ql,
                padded_len: 355,
                lanes: 32,
                real_cells: (ql * 355 * 32) as u64,
            };
            shape.real_cells as f64 / m.task_seconds(v, &shape, p)
        };
        assert!(rate(144) < rate(1000));
        assert!(rate(1000) < rate(5478));
    }

    #[test]
    fn scalar_variant_charged_per_real_cell() {
        let m = CostModel::xeon();
        let shape = TaskShape {
            query_len: 100,
            padded_len: 200,
            lanes: 16,
            real_cells: 50_000,
        };
        let v = variant(Vectorization::NoVec, ProfileMode::Query);
        let cyc = m.task_cycles(v, &shape, 1);
        assert!((cyc - 50_000.0 * m.costs.cps_novec_qp).abs() < 1e-6);
    }
}
