//! # sw-device — the simulated heterogeneous-hardware substrate
//!
//! The paper's testbed is a 2×Xeon E5-2670 host with a 60-core Xeon Phi
//! behind PCIe Gen2 — hardware this reproduction does not have (see
//! DESIGN.md §2). This crate substitutes an explicit, documented model:
//!
//! * [`model`] / [`presets`] — parametric device descriptions (cores, SMT,
//!   vector width, frequency, caches, gather support, PCIe link, TDP) with
//!   presets for the paper's two devices.
//! * [`cache`] — the working-set spill model behind the blocking study
//!   (Fig. 7).
//! * [`perfmodel`] — the analytic per-task cost model: calibrated
//!   cycles-per-vector-iteration per kernel variant, SMT issue-efficiency
//!   curves, memory-contention scaling, profile-build and dispatch
//!   overheads. Every constant documents the paper sentence it is
//!   calibrated against.
//! * [`offload`] — a `#pragma offload`-style asynchronous runtime
//!   simulator: transfers over the PCIe link, kernel launches, signals and
//!   waits, with a causally-consistent timeline.
//! * [`energy`] — the TDP-based energy model for the paper's stated
//!   future work (performance per watt across split ratios).
//!
//! The real kernels in `sw-kernels` prove functional correctness; this
//! crate reproduces the *throughput shapes* of the paper's figures, which
//! a single-core container cannot produce by direct measurement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod energy;
pub mod model;
pub mod offload;
pub mod perfmodel;
pub mod presets;

pub use model::{DeviceSpec, PcieLink, ThreadPlacement};
pub use perfmodel::{CostModel, TaskShape};
