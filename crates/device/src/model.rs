//! Parametric device descriptions.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A PCIe link between host and coprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Effective unidirectional bandwidth in bytes/second (PCIe Gen2 x16
    /// peaks at 8 GB/s; ~6 GB/s is achievable in practice).
    pub bandwidth_bps: f64,
    /// Per-transfer latency in seconds (DMA setup + driver).
    pub latency_s: f64,
    /// Offload kernel-launch overhead in seconds (the `#pragma offload`
    /// runtime cost the paper's Algorithm 2 pays per region).
    pub launch_s: f64,
}

impl PcieLink {
    /// PCIe Gen2 x16, the paper's host–Phi link.
    pub fn gen2_x16() -> Self {
        PcieLink {
            bandwidth_bps: 6.0e9,
            latency_s: 20e-6,
            launch_s: 150e-6,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// How worker threads map onto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadPlacement {
    /// Physical cores in use.
    pub cores_used: u32,
    /// Hardware threads per used core (uniform; 1..=4).
    pub threads_per_core: u32,
}

impl ThreadPlacement {
    /// Total worker threads.
    pub fn total_threads(&self) -> u32 {
        self.cores_used * self.threads_per_core
    }
}

/// A compute device (host CPU or coprocessor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `2x Xeon E5-2670`.
    pub name: Arc<str>,
    /// Physical core count (16 for the dual E5-2670 host, 60 for the Phi).
    pub cores: u32,
    /// Hardware threads per core (2 with HT, 4 on the Phi).
    pub smt: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// SIMD width in bits (256 AVX / 512 MIC).
    pub vector_bits: u32,
    /// Whether the ISA has a vector gather instruction (the Phi does, AVX
    /// does not — the paper's explanation for the QP/SP asymmetry, §V-C).
    pub has_gather: bool,
    /// Per-core L2 capacity in bytes (256 KB Xeon, 512 KB Phi).
    pub l2_bytes: u32,
    /// Shared last-level cache in bytes (20 MB/socket L3 on the Xeon;
    /// **zero** on the Phi — the architectural fact behind Fig. 7).
    pub llc_bytes: u64,
    /// Issue efficiency when running `t` threads per core, indexed by
    /// `t - 1` (models HT gain on the Xeon and the in-order Phi's need for
    /// ≥2 threads/core to fill its pipeline).
    pub smt_issue_eff: [f64; 4],
    /// Memory-contention scaling per additional active core (the paper's
    /// 99 %→88 % efficiency falloff from 4 to 16 threads).
    pub contention_per_core: f64,
    /// Thermal design power in watts (the paper quotes 120 W per Xeon
    /// chip and 240 W for the Phi).
    pub tdp_watts: f64,
    /// PCIe link (None for the host itself).
    pub pcie: Option<PcieLink>,
}

impl DeviceSpec {
    /// Vector lanes at 16-bit elements (the kernels' score width).
    pub fn lanes_i16(&self) -> usize {
        (self.vector_bits / 16) as usize
    }

    /// Maximum hardware threads.
    pub fn max_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Map a requested thread count onto cores (OpenMP `compact`-like:
    /// use as many cores as possible before doubling up).
    ///
    /// # Panics
    /// Panics if `threads` is zero or exceeds the device's capacity.
    pub fn place_threads(&self, threads: u32) -> ThreadPlacement {
        assert!(threads >= 1, "need at least one thread");
        assert!(
            threads <= self.max_threads(),
            "{} threads exceed {} capacity ({})",
            threads,
            self.name,
            self.max_threads()
        );
        if threads <= self.cores {
            ThreadPlacement {
                cores_used: threads,
                threads_per_core: 1,
            }
        } else {
            // Spread evenly; round threads/core up and shrink cores to fit.
            let tpc = threads.div_ceil(self.cores).min(self.smt);
            let cores = threads.div_ceil(tpc);
            ThreadPlacement {
                cores_used: cores,
                threads_per_core: tpc,
            }
        }
    }

    /// Issue efficiency of a placement (per core, relative to one
    /// perfectly-fed thread).
    pub fn issue_eff(&self, placement: ThreadPlacement) -> f64 {
        self.smt_issue_eff[(placement.threads_per_core.min(4) - 1) as usize]
    }

    /// Memory-contention factor of a placement.
    pub fn contention(&self, placement: ThreadPlacement) -> f64 {
        (1.0 - self.contention_per_core * (placement.cores_used.saturating_sub(1)) as f64).max(0.1)
    }

    /// Effective aggregate clock available to DP work, in GHz:
    /// `cores × freq × issue_eff × contention`.
    pub fn effective_ghz(&self, placement: ThreadPlacement) -> f64 {
        placement.cores_used as f64
            * self.freq_ghz
            * self.issue_eff(placement)
            * self.contention(placement)
    }

    /// Effective clock available to **one thread** of the placement, in
    /// GHz (the per-worker speed the discrete-event scheduler uses).
    pub fn per_thread_ghz(&self, placement: ThreadPlacement) -> f64 {
        self.effective_ghz(placement) / placement.total_threads() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn pcie_transfer_time() {
        let link = PcieLink::gen2_x16();
        let t = link.transfer_time(6_000_000_000);
        assert!((t - 1.0).abs() < 0.01, "6 GB at 6 GB/s ≈ 1 s, got {t}");
        // Latency floor on tiny transfers.
        assert!(link.transfer_time(1) >= link.latency_s);
    }

    #[test]
    fn lanes_at_paper_widths() {
        assert_eq!(presets::xeon_e5_2670_pair().lanes_i16(), 16);
        assert_eq!(presets::xeon_phi_60c().lanes_i16(), 32);
    }

    #[test]
    fn place_threads_prefers_cores() {
        let xeon = presets::xeon_e5_2670_pair();
        let p = xeon.place_threads(8);
        assert_eq!(
            p,
            ThreadPlacement {
                cores_used: 8,
                threads_per_core: 1
            }
        );
        let p = xeon.place_threads(32);
        assert_eq!(
            p,
            ThreadPlacement {
                cores_used: 16,
                threads_per_core: 2
            }
        );
    }

    #[test]
    fn place_threads_phi_spread() {
        let phi = presets::xeon_phi_60c();
        assert_eq!(
            phi.place_threads(240),
            ThreadPlacement {
                cores_used: 60,
                threads_per_core: 4
            }
        );
        assert_eq!(
            phi.place_threads(120),
            ThreadPlacement {
                cores_used: 60,
                threads_per_core: 2
            }
        );
        assert_eq!(
            phi.place_threads(30),
            ThreadPlacement {
                cores_used: 30,
                threads_per_core: 1
            }
        );
        assert_eq!(
            phi.place_threads(180),
            ThreadPlacement {
                cores_used: 60,
                threads_per_core: 3
            }
        );
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_threads_panics() {
        presets::xeon_e5_2670_pair().place_threads(33);
    }

    #[test]
    fn effective_ghz_monotone_in_threads() {
        let xeon = presets::xeon_e5_2670_pair();
        let mut last = 0.0;
        for t in [1u32, 2, 4, 8, 16, 32] {
            let g = xeon.effective_ghz(xeon.place_threads(t));
            assert!(
                g > last,
                "effective GHz must grow with threads ({t}: {g} vs {last})"
            );
            last = g;
        }
    }

    #[test]
    fn per_thread_ghz_times_threads_is_effective() {
        let phi = presets::xeon_phi_60c();
        let p = phi.place_threads(180);
        let total = phi.per_thread_ghz(p) * p.total_threads() as f64;
        assert!((total - phi.effective_ghz(p)).abs() < 1e-9);
    }

    #[test]
    fn contention_never_negative() {
        let mut d = presets::xeon_e5_2670_pair();
        d.contention_per_core = 0.5;
        let p = d.place_threads(16);
        assert!(d.contention(p) >= 0.1);
    }
}
