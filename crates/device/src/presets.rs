//! Device presets — the paper's testbed (§V-A) plus comparison points.

use crate::model::{DeviceSpec, PcieLink};
use crate::perfmodel::KernelCosts;

/// The paper's host: 2× Intel Xeon E5-2670, 8 cores each @ 2.60 GHz with
/// Hyper-Threading (16C/32T total), AVX, 32 GB RAM.
///
/// * `smt_issue_eff[1] = 1.6`: the paper reports parallel efficiency
///   falling from 88 % at 16 threads to 70 % at 32 — i.e. HT adds ~60 %
///   per-core throughput on this memory-bound kernel.
/// * `contention_per_core = 0.008`: reproduces the 99 % → 88 % efficiency
///   slide between 4 and 16 threads.
/// * TDP: the paper quotes "120 watts" per Xeon chip (§V-C3) — 240 W for
///   the pair.
pub fn xeon_e5_2670_pair() -> DeviceSpec {
    DeviceSpec {
        name: "2x Xeon E5-2670".into(),
        cores: 16,
        smt: 2,
        freq_ghz: 2.6,
        vector_bits: 256,
        has_gather: false,
        l2_bytes: 256 * 1024,
        llc_bytes: 2 * 20 * 1024 * 1024,
        smt_issue_eff: [1.0, 1.6, 1.6, 1.6],
        contention_per_core: 0.008,
        tdp_watts: 240.0,
        pcie: None,
    }
}

/// The paper's coprocessor: Intel Xeon Phi, 60 cores @ ~1.05 GHz, 4
/// hardware threads/core (240 total), 512-bit vectors, 512 KB L2/core,
/// **no L3**, 5 GB GDDR5, PCIe Gen2.
///
/// * `smt_issue_eff = [0.5, 0.9, 1.0, 1.05]`: the Phi's in-order cores
///   cannot issue from the same thread in consecutive cycles, so a single
///   thread reaches at most half peak; 2+ threads/core fill the pipeline
///   (this is why Fig. 5's x-axis starts at 30 threads and the paper runs
///   240).
/// * TDP: the paper quotes 240 W (§V-C3).
pub fn xeon_phi_60c() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon Phi 60c".into(),
        cores: 60,
        smt: 4,
        freq_ghz: 1.05,
        vector_bits: 512,
        has_gather: true,
        l2_bytes: 512 * 1024,
        llc_bytes: 0,
        smt_issue_eff: [0.5, 0.9, 1.0, 1.05],
        contention_per_core: 0.0008,
        tdp_watts: 240.0,
        pcie: Some(PcieLink::gen2_x16()),
    }
}

/// Kernel cost constants for the Xeon host.
///
/// `cpv_*` = cycles per vector iteration of the inner DP loop (one
/// iteration updates `L = 16` cells); `cps_*` = cycles per cell for the
/// scalar (`no-vec`) code. Calibrated against the paper's Fig. 3/4 peaks:
/// intrinsic-SP 30.4 GCUPS and simd-SP 25.1 GCUPS at 32 threads; the QP
/// variants pay the shuffle-emulated gather (no `vgather` on AVX, §V-C1).
pub fn xeon_costs() -> KernelCosts {
    KernelCosts {
        cps_novec_qp: 31.0,
        cps_novec_sp: 29.0,
        cpv_simd_qp: 52.0,
        cpv_simd_sp: 37.0,
        cpv_intr_qp: 41.0,
        cpv_intr_sp: 31.0,
        sp_build_cyc_per_op: 2.0,
        qp_build_cyc_per_op: 2.0,
        dispatch_overhead_s: 2.0e-6,
        spill_penalty_cpv: 10.0,
    }
}

/// Kernel cost constants for the Phi.
///
/// Calibrated against Fig. 5's 240-thread points: intrinsic-SP 34.9,
/// intrinsic-QP 27.1, simd-SP 14.5, simd-QP 13.6 GCUPS. The in-order core
/// needs more cycles per vector iteration than the Xeon, but carries 32
/// lanes; hardware gather keeps the intrinsic-QP penalty small
/// (74/58 ≈ 1.29× vs the Xeon's 41/31 ≈ 1.32× on half the lanes); guided
/// vectorization lands at ~40 % of intrinsic, matching the paper's
/// "hand-vectorization [has] more impact … than in Intel Xeon".
/// `spill_penalty_cpv` is large because an L2 miss goes straight to GDDR5
/// (no L3) — the Fig. 7 asymmetry.
pub fn phi_costs() -> KernelCosts {
    KernelCosts {
        cps_novec_qp: 45.0,
        cps_novec_sp: 42.0,
        cpv_simd_qp: 148.0,
        cpv_simd_sp: 139.0,
        cpv_intr_qp: 74.0,
        cpv_intr_sp: 58.0,
        sp_build_cyc_per_op: 4.0,
        qp_build_cyc_per_op: 4.0,
        dispatch_overhead_s: 4.0e-6,
        spill_penalty_cpv: 60.0,
    }
}

/// A later KNC step: Xeon Phi 7120 (61 cores @ 1.24 GHz) — used by the
/// `future` projection study (§V-C2: *"future coprocessors with more
/// cores and threads per core will provide better GCUPS"*).
pub fn xeon_phi_7120() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon Phi 7120 (KNC)".into(),
        cores: 61,
        smt: 4,
        freq_ghz: 1.24,
        vector_bits: 512,
        has_gather: true,
        l2_bytes: 512 * 1024,
        llc_bytes: 0,
        smt_issue_eff: [0.5, 0.9, 1.0, 1.05],
        contention_per_core: 0.0008,
        tdp_watts: 300.0,
        pcie: Some(PcieLink::gen2_x16()),
    }
}

/// Knights Landing projection: Xeon Phi 7210 — 64 out-of-order cores @
/// 1.3 GHz, two AVX-512 VPUs per core (single-thread issue no longer
/// starves), MCDRAM behind L2, socketed (no PCIe offload needed).
pub fn xeon_phi_knl_7210() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon Phi 7210 (KNL)".into(),
        cores: 64,
        smt: 4,
        freq_ghz: 1.3,
        vector_bits: 512,
        has_gather: true,
        l2_bytes: 512 * 1024,                // 1 MB shared per 2-core tile
        llc_bytes: 16 * 1024 * 1024 * 1024,  // MCDRAM as LLC-like cache
        smt_issue_eff: [1.0, 1.4, 1.5, 1.5], // out-of-order: 1 thread ≈ full issue
        contention_per_core: 0.0008,
        tdp_watts: 215.0,
        pcie: None, // self-hosted
    }
}

/// KNL top bin: Xeon Phi 7290, 72 cores @ 1.5 GHz.
pub fn xeon_phi_knl_7290() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon Phi 7290 (KNL)".into(),
        cores: 72,
        smt: 4,
        freq_ghz: 1.5,
        vector_bits: 512,
        has_gather: true,
        l2_bytes: 512 * 1024,
        llc_bytes: 16 * 1024 * 1024 * 1024,
        smt_issue_eff: [1.0, 1.4, 1.5, 1.5],
        contention_per_core: 0.0008,
        tdp_watts: 245.0,
        pcie: None,
    }
}

/// Cost constants for the KNL projections: the out-of-order core retires
/// the same inner loop in fewer cycles than KNC (dual VPUs, better
/// memory), taken as 0.75× the KNC `cpv`; MCDRAM halves the spill
/// penalty.
pub fn knl_costs() -> KernelCosts {
    let knc = phi_costs();
    KernelCosts {
        cpv_simd_qp: knc.cpv_simd_qp * 0.75,
        cpv_simd_sp: knc.cpv_simd_sp * 0.75,
        cpv_intr_qp: knc.cpv_intr_qp * 0.75,
        cpv_intr_sp: knc.cpv_intr_sp * 0.75,
        cps_novec_qp: knc.cps_novec_qp * 0.6,
        cps_novec_sp: knc.cps_novec_sp * 0.6,
        spill_penalty_cpv: knc.spill_penalty_cpv * 0.5,
        ..knc
    }
}

/// A smaller modern laptop-class CPU, for users running the library on
/// their own machines (not part of the paper's evaluation).
pub fn laptop_4c() -> DeviceSpec {
    DeviceSpec {
        name: "laptop 4c".into(),
        cores: 4,
        smt: 2,
        freq_ghz: 3.0,
        vector_bits: 256,
        has_gather: true,
        l2_bytes: 1024 * 1024,
        llc_bytes: 8 * 1024 * 1024,
        smt_issue_eff: [1.0, 1.3, 1.3, 1.3],
        contention_per_core: 0.01,
        tdp_watts: 28.0,
        pcie: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shapes() {
        let xeon = xeon_e5_2670_pair();
        assert_eq!(xeon.max_threads(), 32);
        assert!(!xeon.has_gather);
        assert!(xeon.llc_bytes > 0);

        let phi = xeon_phi_60c();
        assert_eq!(phi.max_threads(), 240);
        assert!(phi.has_gather);
        assert_eq!(
            phi.llc_bytes, 0,
            "the Phi has no L3 — Fig. 7 depends on this"
        );
        assert!(phi.pcie.is_some());
    }

    #[test]
    fn cost_orderings_match_paper() {
        for costs in [xeon_costs(), phi_costs()] {
            // intrinsic beats guided, SP beats QP, within each tier.
            assert!(costs.cpv_intr_sp < costs.cpv_intr_qp);
            assert!(costs.cpv_simd_sp < costs.cpv_simd_qp);
            assert!(costs.cpv_intr_sp < costs.cpv_simd_sp);
            assert!(costs.cpv_intr_qp < costs.cpv_simd_qp);
        }
    }

    #[test]
    fn phi_gather_penalty_smaller_relative() {
        // §V-C2: gather hardware keeps the Phi's QP penalty mild in the
        // intrinsic tier relative to what the missing gather costs on Xeon
        // *per lane processed*: compare effective cells/cycle ratios.
        let x = xeon_costs();
        let p = phi_costs();
        let xeon_qp_sp = x.cpv_intr_qp / x.cpv_intr_sp;
        let phi_qp_sp = p.cpv_intr_qp / p.cpv_intr_sp;
        assert!(
            phi_qp_sp < xeon_qp_sp + 0.05,
            "phi {phi_qp_sp} vs xeon {xeon_qp_sp}"
        );
    }

    #[test]
    fn phi_spill_penalty_dominates() {
        assert!(phi_costs().spill_penalty_cpv > 3.0 * xeon_costs().spill_penalty_cpv);
    }
}
