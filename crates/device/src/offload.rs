//! Offload runtime simulator — the `#pragma offload` semantics of
//! Algorithm 2.
//!
//! The paper's heterogeneous version launches the Phi's share
//! asynchronously (`signal(sem)`), computes the host's share, then blocks
//! (`wait(sem)`) before merging scores. This module simulates that
//! runtime: two clocks (host, device), a PCIe link with bandwidth and
//! latency, and a causally-ordered event timeline that the Fig. 8 harness
//! and the energy model both consume.

use crate::model::PcieLink;
use serde::{Deserialize, Serialize};
use sw_trace::WorkerJournal;

/// What happened during one timeline interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Host→device input transfer.
    TransferIn {
        /// Payload size.
        bytes: u64,
    },
    /// Kernel execution on the device.
    Kernel {
        /// Human-readable label.
        label: String,
    },
    /// Device→host output transfer.
    TransferOut {
        /// Payload size.
        bytes: u64,
    },
    /// Host-side compute.
    HostCompute {
        /// Human-readable label.
        label: String,
    },
    /// Host blocked in `wait(sem)`.
    HostWait,
    /// The device died mid-kernel: the offload produced no results and
    /// the host must re-run the share itself (graceful degradation).
    DeviceFault {
        /// Human-readable label of the failed kernel.
        label: String,
    },
}

/// One interval on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Interval start, seconds from simulation start.
    pub start_s: f64,
    /// Interval end.
    pub end_s: f64,
    /// What the interval was.
    pub kind: EventKind,
}

/// Handle returned by an asynchronous offload — Algorithm 2's `sem`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Device-clock time at which the offload's results are visible to
    /// the host.
    completion_s: f64,
    /// True when the offload died mid-kernel and produced no results.
    failed: bool,
}

/// What [`OffloadSim::wait_timeout`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitOutcome {
    /// The offload's results are visible; the host may merge them.
    Completed,
    /// The offload was still silent when the timeout expired. The host
    /// gave up waiting and must treat the share as lost.
    TimedOut,
    /// The offload died mid-kernel; the host saw the fault as soon as it
    /// reached the wait.
    Failed,
}

/// The offload runtime simulator.
#[derive(Debug)]
pub struct OffloadSim {
    link: PcieLink,
    host_clock: f64,
    device_clock: f64,
    timeline: Vec<Event>,
    /// Attached trace journal; a disabled journal (the default) makes
    /// every emission a no-op.
    journal: WorkerJournal,
}

impl Clone for OffloadSim {
    /// Clones the simulator state but *not* the journal — two simulators
    /// writing the same worker track would interleave nonsense, so the
    /// clone starts with a disabled journal.
    fn clone(&self) -> Self {
        OffloadSim {
            link: self.link,
            host_clock: self.host_clock,
            device_clock: self.device_clock,
            timeline: self.timeline.clone(),
            journal: WorkerJournal::disabled(),
        }
    }
}

/// Simulated seconds → the journal's microsecond clock.
fn sim_us(t: f64) -> u64 {
    (t * 1e6).round() as u64
}

impl OffloadSim {
    /// Fresh simulator over `link`, both clocks at zero.
    pub fn new(link: PcieLink) -> Self {
        OffloadSim {
            link,
            host_clock: 0.0,
            device_clock: 0.0,
            timeline: Vec::new(),
            journal: WorkerJournal::disabled(),
        }
    }

    /// Attach a trace journal: offload signals, waits and timeouts are
    /// emitted into it at the simulated clock (see `sw-trace`). The
    /// journal flushes its events when the simulator is dropped or the
    /// journal is [detached](OffloadSim::detach_journal).
    pub fn attach_journal(&mut self, journal: WorkerJournal) {
        self.journal = journal;
    }

    /// Detach the attached journal (a disabled journal remains).
    pub fn detach_journal(&mut self) -> WorkerJournal {
        std::mem::take(&mut self.journal)
    }

    /// Asynchronously offload a kernel: input transfer, device compute
    /// (`kernel_s` of device time), output transfer. The host pays only
    /// the launch overhead and continues — this is
    /// `#pragma offload … signal(sem)`.
    pub fn offload_async(
        &mut self,
        in_bytes: u64,
        kernel_s: f64,
        out_bytes: u64,
        label: &str,
    ) -> Signal {
        assert!(kernel_s >= 0.0, "kernel time must be non-negative");
        // Host-side launch cost.
        self.host_clock += self.link.launch_s;
        // Input DMA starts once both the host has issued it and the device
        // stream is free.
        let t0 = self.host_clock.max(self.device_clock);
        let t1 = t0 + self.link.transfer_time(in_bytes);
        self.timeline.push(Event {
            start_s: t0,
            end_s: t1,
            kind: EventKind::TransferIn { bytes: in_bytes },
        });
        let t2 = t1 + kernel_s;
        self.timeline.push(Event {
            start_s: t1,
            end_s: t2,
            kind: EventKind::Kernel {
                label: label.into(),
            },
        });
        let t3 = t2 + self.link.transfer_time(out_bytes);
        self.timeline.push(Event {
            start_s: t2,
            end_s: t3,
            kind: EventKind::TransferOut { bytes: out_bytes },
        });
        self.device_clock = t3;
        self.journal.emit_at(
            sim_us(self.host_clock),
            sw_trace::EventKind::OffloadSignal { bytes: in_bytes },
        );
        Signal {
            completion_s: t3,
            failed: false,
        }
    }

    /// An offload whose kernel dies after `fail_after_s` seconds of
    /// device time: the input transfer happens, the kernel runs partially,
    /// then a [`EventKind::DeviceFault`] is recorded — no output transfer,
    /// no results. Waiting on the returned signal reports
    /// [`WaitOutcome::Failed`] and the host must recompute the share.
    pub fn offload_async_failing(
        &mut self,
        in_bytes: u64,
        fail_after_s: f64,
        label: &str,
    ) -> Signal {
        assert!(fail_after_s >= 0.0, "fault time must be non-negative");
        self.host_clock += self.link.launch_s;
        let t0 = self.host_clock.max(self.device_clock);
        let t1 = t0 + self.link.transfer_time(in_bytes);
        self.timeline.push(Event {
            start_s: t0,
            end_s: t1,
            kind: EventKind::TransferIn { bytes: in_bytes },
        });
        let t2 = t1 + fail_after_s;
        self.timeline.push(Event {
            start_s: t1,
            end_s: t2,
            kind: EventKind::DeviceFault {
                label: label.into(),
            },
        });
        self.device_clock = t2;
        self.journal.emit_at(
            sim_us(self.host_clock),
            sw_trace::EventKind::OffloadSignal { bytes: in_bytes },
        );
        Signal {
            completion_s: t2,
            failed: true,
        }
    }

    /// Host-side compute for `secs` (Algorithm 2 line 12: the CPU share).
    pub fn host_compute(&mut self, secs: f64, label: &str) {
        assert!(secs >= 0.0, "compute time must be non-negative");
        let t0 = self.host_clock;
        self.host_clock += secs;
        self.timeline.push(Event {
            start_s: t0,
            end_s: self.host_clock,
            kind: EventKind::HostCompute {
                label: label.into(),
            },
        });
    }

    /// Block the host until the offload signalled by `sig` has completed —
    /// `#pragma offload wait(sem)`.
    pub fn wait(&mut self, sig: Signal) {
        let blocked_us = sim_us(sig.completion_s).saturating_sub(sim_us(self.host_clock));
        if sig.completion_s > self.host_clock {
            self.timeline.push(Event {
                start_s: self.host_clock,
                end_s: sig.completion_s,
                kind: EventKind::HostWait,
            });
            self.host_clock = sig.completion_s;
        }
        self.journal.emit_at(
            sim_us(self.host_clock),
            sw_trace::EventKind::OffloadWait { us: blocked_us },
        );
    }

    /// Fault-aware wait with a deadline: block until the offload
    /// completes, fails, or `timeout_s` of host time elapses, whichever
    /// comes first. A timed-out wait leaves the host clock at the
    /// deadline — the production pattern for detecting a wedged device
    /// (the real executor's `accel_timeout_ms` is the same guard).
    pub fn wait_timeout(&mut self, sig: Signal, timeout_s: f64) -> WaitOutcome {
        assert!(
            timeout_s >= 0.0 && timeout_s.is_finite(),
            "timeout must be finite and non-negative"
        );
        let deadline = self.host_clock + timeout_s;
        // The signal (completion or fault) becomes visible at
        // `completion_s`; past the deadline the host stops watching.
        let until = sig.completion_s.min(deadline);
        let blocked_us = sim_us(until).saturating_sub(sim_us(self.host_clock));
        if until > self.host_clock {
            self.timeline.push(Event {
                start_s: self.host_clock,
                end_s: until,
                kind: EventKind::HostWait,
            });
            self.host_clock = until;
        }
        if sig.completion_s > deadline {
            self.journal.emit_at(
                sim_us(self.host_clock),
                sw_trace::EventKind::OffloadTimeout {
                    us: sim_us(timeout_s),
                },
            );
            WaitOutcome::TimedOut
        } else {
            self.journal.emit_at(
                sim_us(self.host_clock),
                sw_trace::EventKind::OffloadWait { us: blocked_us },
            );
            if sig.failed {
                WaitOutcome::Failed
            } else {
                WaitOutcome::Completed
            }
        }
    }

    /// Current host clock (wall-clock of the heterogeneous run so far).
    pub fn elapsed(&self) -> f64 {
        self.host_clock
    }

    /// Device busy time (transfers + kernels, including the burnt time of
    /// a kernel that died mid-run) — energy accounting input.
    pub fn device_busy(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::TransferIn { .. }
                        | EventKind::Kernel { .. }
                        | EventKind::TransferOut { .. }
                        | EventKind::DeviceFault { .. }
                )
            })
            .map(|e| e.end_s - e.start_s)
            .sum()
    }

    /// Host busy time (compute only, excluding waits).
    pub fn host_busy(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HostCompute { .. }))
            .map(|e| e.end_s - e.start_s)
            .sum()
    }

    /// The full event timeline.
    pub fn timeline(&self) -> &[Event] {
        &self.timeline
    }

    /// Render the timeline as a two-row ASCII Gantt chart (`host` /
    /// `device`), `width` columns wide. Legend: `#` compute, `=`
    /// transfer, `.` wait/idle.
    pub fn render_timeline(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self
            .timeline
            .iter()
            .map(|e| e.end_s)
            .fold(self.host_clock, f64::max)
            .max(1e-12);
        let mut host = vec![b' '; width];
        let mut device = vec![b' '; width];
        let col = |t: f64| -> usize { ((t / span) * (width as f64 - 1.0)) as usize };
        for e in &self.timeline {
            let (row, ch): (&mut Vec<u8>, u8) = match e.kind {
                EventKind::HostCompute { .. } => (&mut host, b'#'),
                EventKind::HostWait => (&mut host, b'.'),
                EventKind::Kernel { .. } => (&mut device, b'#'),
                EventKind::TransferIn { .. } | EventKind::TransferOut { .. } => (&mut device, b'='),
                EventKind::DeviceFault { .. } => (&mut device, b'X'),
            };
            let (a, b) = (col(e.start_s), col(e.end_s));
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        format!(
            "host   |{}|\ndevice |{}|  ({:.3}s total; # compute, = transfer, . wait, X fault)",
            String::from_utf8(host).expect("ascii"),
            String::from_utf8(device).expect("ascii"),
            span
        )
    }

    /// Validate causal consistency: every event has non-negative duration
    /// and device-stream events do not overlap each other.
    pub fn check_causality(&self) -> bool {
        if self.timeline.iter().any(|e| e.end_s < e.start_s) {
            return false;
        }
        let mut device_events: Vec<(f64, f64)> = self
            .timeline
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::TransferIn { .. }
                        | EventKind::Kernel { .. }
                        | EventKind::TransferOut { .. }
                        | EventKind::DeviceFault { .. }
                )
            })
            .map(|e| (e.start_s, e.end_s))
            .collect();
        device_events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        device_events.windows(2).all(|w| w[0].1 <= w[1].0 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PcieLink {
        PcieLink {
            bandwidth_bps: 1e9,
            latency_s: 1e-3,
            launch_s: 1e-3,
        }
    }

    #[test]
    fn algorithm2_overlap() {
        // Offload 1 GB in (1.001 s), 10 s kernel, tiny out; host computes
        // 8 s meanwhile; wall clock = device path, host wait > 0.
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(1_000_000_000, 10.0, 1000, "phi share");
        sim.host_compute(8.0, "cpu share");
        sim.wait(sig);
        let elapsed = sim.elapsed();
        // Device path: 0.001 (launch) + 1.001 + 10 + 0.001001 ≈ 11.003.
        assert!((elapsed - 11.003).abs() < 0.01, "elapsed {elapsed}");
        assert!(sim.check_causality());
        assert!(sim.host_busy() > 7.9 && sim.host_busy() < 8.1);
        assert!(sim.device_busy() > 11.0 && sim.device_busy() < 11.1);
    }

    #[test]
    fn host_bound_run_has_no_wait() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(1000, 1.0, 1000, "small phi share");
        sim.host_compute(10.0, "big cpu share");
        sim.wait(sig);
        // Host finished after the device: wait is a no-op.
        assert!((sim.elapsed() - (0.001 + 10.0)).abs() < 1e-6);
        assert!(!sim
            .timeline()
            .iter()
            .any(|e| matches!(e.kind, EventKind::HostWait)));
    }

    #[test]
    fn wait_records_idle_interval() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(0, 5.0, 0, "k");
        sim.wait(sig);
        assert!(sim
            .timeline()
            .iter()
            .any(|e| matches!(e.kind, EventKind::HostWait)));
        assert!(sim.check_causality());
    }

    #[test]
    fn sequential_offloads_queue_on_device() {
        let mut sim = OffloadSim::new(link());
        let s1 = sim.offload_async(0, 2.0, 0, "k1");
        let s2 = sim.offload_async(0, 3.0, 0, "k2");
        assert!(s2.completion_s > s1.completion_s + 2.9);
        sim.wait(s2);
        assert!(sim.check_causality());
    }

    #[test]
    fn zero_byte_transfers_cost_latency_only() {
        let sim_link = link();
        let mut sim = OffloadSim::new(sim_link);
        let sig = sim.offload_async(0, 0.0, 0, "noop");
        sim.wait(sig);
        // launch + 2 × latency.
        assert!((sim.elapsed() - (1e-3 + 2e-3)).abs() < 1e-9);
    }

    #[test]
    fn timeline_rendering() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(1_000_000_000, 5.0, 0, "k");
        sim.host_compute(3.0, "c");
        sim.wait(sig);
        let text = sim.render_timeline(60);
        assert!(text.contains("host   |"));
        assert!(text.contains("device |"));
        // Host computed then waited; device transferred then computed.
        let host_row = text.lines().next().unwrap();
        let dev_row = text.lines().nth(1).unwrap();
        assert!(host_row.contains('#') && host_row.contains('.'));
        assert!(dev_row.contains('=') && dev_row.contains('#'));
        // Rows are equal width.
        assert_eq!(
            host_row.find('|').map(|a| host_row.rfind('|').unwrap() - a),
            dev_row.find('|').map(|a| dev_row.rfind('|').unwrap() - a)
        );
    }

    #[test]
    fn failing_offload_reports_failed_wait() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async_failing(1000, 2.0, "doomed");
        sim.host_compute(1.0, "cpu share");
        assert_eq!(sim.wait_timeout(sig, 100.0), WaitOutcome::Failed);
        assert!(sim
            .timeline()
            .iter()
            .any(|e| matches!(e.kind, EventKind::DeviceFault { .. })));
        // No output transfer ever happened.
        assert!(!sim
            .timeline()
            .iter()
            .any(|e| matches!(e.kind, EventKind::TransferOut { .. })));
        // The burnt device time still counts toward energy accounting.
        assert!(sim.device_busy() > 2.0);
        assert!(sim.check_causality());
    }

    #[test]
    fn wedged_offload_times_out_at_the_deadline() {
        let mut sim = OffloadSim::new(link());
        // A kernel that would take 100 s models a wedged device.
        let sig = sim.offload_async(0, 100.0, 0, "wedged");
        let before = sim.elapsed();
        assert_eq!(sim.wait_timeout(sig, 5.0), WaitOutcome::TimedOut);
        // The host stopped watching exactly at the deadline.
        assert!((sim.elapsed() - (before + 5.0)).abs() < 1e-9);
        assert!(sim.check_causality());
    }

    #[test]
    fn healthy_offload_completes_within_timeout() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(0, 1.0, 0, "k");
        assert_eq!(sim.wait_timeout(sig, 50.0), WaitOutcome::Completed);
        // wait_timeout leaves the clock where plain wait would have.
        let mut reference = OffloadSim::new(link());
        let sig2 = reference.offload_async(0, 1.0, 0, "k");
        reference.wait(sig2);
        assert!((sim.elapsed() - reference.elapsed()).abs() < 1e-12);
    }

    #[test]
    fn failed_offload_renders_fault_marker() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async_failing(1_000_000_000, 5.0, "dead");
        sim.wait_timeout(sig, 100.0);
        let text = sim.render_timeline(60);
        assert!(text.lines().nth(1).unwrap().contains('X'));
    }

    #[test]
    fn attached_journal_records_offload_events() {
        let tracer = sw_trace::Tracer::full();
        let mut sim = OffloadSim::new(link());
        sim.attach_journal(tracer.worker(1, 0));
        let sig = sim.offload_async(1_000_000, 5.0, 1000, "phi share");
        sim.host_compute(1.0, "cpu share");
        sim.wait(sig);
        let wedged = sim.offload_async(0, 100.0, 0, "wedged");
        assert_eq!(sim.wait_timeout(wedged, 2.0), WaitOutcome::TimedOut);
        drop(sim.detach_journal());
        let tl = tracer.timeline();
        assert_eq!(tl.count("offload_signal"), 2);
        assert_eq!(tl.count("offload_wait"), 1);
        assert_eq!(tl.count("offload_timeout"), 1);
        // Events carry the simulated clock, so the first wait ends at the
        // device path's completion (~6 s), not at wall zero.
        let wait_t = tl
            .events_sorted()
            .iter()
            .find_map(|(_, _, e)| match e.kind {
                sw_trace::EventKind::OffloadWait { .. } => Some(e.t_us),
                _ => None,
            })
            .expect("wait event");
        assert!(wait_t > 5_000_000, "wait stamped at sim clock: {wait_t}");
    }

    #[test]
    fn cloned_sim_does_not_share_the_journal() {
        let tracer = sw_trace::Tracer::full();
        let mut sim = OffloadSim::new(link());
        sim.attach_journal(tracer.worker(1, 0));
        let mut copy = sim.clone();
        let sig = copy.offload_async(10, 1.0, 10, "cloned");
        copy.wait(sig);
        drop(copy);
        drop(sim.detach_journal());
        assert_eq!(tracer.timeline().total_events(), 0);
    }

    #[test]
    fn timeline_durations_non_negative() {
        let mut sim = OffloadSim::new(link());
        let sig = sim.offload_async(500, 0.5, 500, "k");
        sim.host_compute(0.0, "empty");
        sim.wait(sig);
        assert!(sim.timeline().iter().all(|e| e.end_s >= e.start_s));
    }
}
