//! Differential suite for the intrinsic tier (`sw_kernels::arch`).
//!
//! Every ISA the dispatcher can select — portable, SSE2, AVX2 — must
//! produce **identical** results for identical inputs: the scores *and*
//! the overflow/saturation flags, for both profile flavours (QP/SP), both
//! element widths (i16/i8), every supported lane width, blocked and
//! unblocked, and for the adaptive i8→i16 cascade. The portable kernels
//! are additionally pinned to the scalar reference on non-overflowed
//! lanes, so agreement here is agreement with ground truth.
//!
//! The inputs deliberately include mixed-length batches (padding lanes in
//! play), batches with fewer sequences than lanes, and sequences tuned to
//! land *exactly* on `i8::MAX` / `i16::MAX` — the boundary where a capped
//! score is indistinguishable from an exact one and only the flag tells.

use sw_kernels::arch::{self, KernelIsa};
use sw_kernels::{sw_score_scalar, SwParams};
use sw_seq::{Alphabet, SeqId};
use sw_swdb::batch::pad_code;
use sw_swdb::{LaneBatch, QueryProfile, QueryProfileI8, SequenceProfile, SequenceProfileI8};

/// Deterministic LCG so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn seq(&mut self, a: &Alphabet, len: usize) -> Vec<u8> {
        const LETTERS: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
        let raw: Vec<u8> = (0..len)
            .map(|_| LETTERS[(self.next() as usize) % LETTERS.len()])
            .collect();
        a.encode_strict(&raw).unwrap()
    }
}

fn make_batch(lanes: usize, a: &Alphabet, seqs: &[Vec<u8>]) -> LaneBatch {
    let refs: Vec<(SeqId, &[u8])> = seqs
        .iter()
        .enumerate()
        .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
        .collect();
    LaneBatch::pack(lanes, &refs, pad_code(a))
}

fn isas() -> Vec<KernelIsa> {
    [KernelIsa::Portable, KernelIsa::Sse2, KernelIsa::Avx2]
        .into_iter()
        .filter(|i| i.is_available())
        .collect()
}

/// Run every kernel flavour at lane width `L` under every available ISA
/// and assert bit-identical outputs; pin portable to the scalar reference.
fn check_width<const L: usize>(
    a: &Alphabet,
    p: &SwParams,
    query: &[u8],
    subjects: &[Vec<u8>],
    label: &str,
) {
    let batch = make_batch(L, a, subjects);
    let qp = QueryProfile::build(query, &p.matrix, a);
    let sp = SequenceProfile::build(&batch, &p.matrix, a);
    let qp8 = QueryProfileI8::from_wide(&qp);
    let sp8 = SequenceProfileI8::from_wide(&sp);

    let base = arch::sw_isa_qp::<L>(KernelIsa::Portable, &qp, &batch, &p.gap, None);
    for (lane, s) in subjects.iter().enumerate() {
        if !base.overflowed[lane] {
            assert_eq!(
                base.scores[lane],
                sw_score_scalar(query, s, p),
                "{label}: portable lane {lane} vs scalar reference"
            );
        }
    }
    let base8 = arch::sw_isa_narrow_qp::<L>(KernelIsa::Portable, &qp8, &batch, &p.gap);
    let base_ad = arch::sw_isa_adaptive_qp::<L>(KernelIsa::Portable, &qp, &qp8, &batch, &p.gap);

    for isa in isas() {
        for block in [None, Some(1), Some(7)] {
            let o = arch::sw_isa_qp::<L>(isa, &qp, &batch, &p.gap, block);
            assert_eq!(o, base, "{label}: qp i16 {isa} block {block:?}");
            let o = arch::sw_isa_sp::<L>(isa, query, &sp, &batch, &p.gap, block);
            assert_eq!(o, base, "{label}: sp i16 {isa} block {block:?}");
        }
        let o = arch::sw_isa_narrow_qp::<L>(isa, &qp8, &batch, &p.gap);
        assert_eq!(o, base8, "{label}: qp i8 {isa}");
        let o = arch::sw_isa_narrow_sp::<L>(isa, query, &sp8, &batch, &p.gap);
        assert_eq!(o, base8, "{label}: sp i8 {isa}");
        let o = arch::sw_isa_adaptive_qp::<L>(isa, &qp, &qp8, &batch, &p.gap);
        assert_eq!(o, base_ad, "{label}: adaptive qp {isa}");
        let o = arch::sw_isa_adaptive_sp::<L>(isa, query, &sp, &sp8, &batch, &p.gap);
        assert_eq!(o, base_ad, "{label}: adaptive sp {isa}");
    }
}

#[test]
fn fuzz_mixed_length_batches_all_widths() {
    let a = Alphabet::protein();
    let p = SwParams::paper_default();
    let mut rng = Rng(0x5eed_5eed);
    for round in 0..3 {
        let qlen = 8 + (rng.next() as usize) % 40;
        let query = rng.seq(&a, qlen);
        // Mixed lengths (1..=60) and deliberately fewer sequences than the
        // widest lane count, so padding lanes and short tails are live.
        let n_seqs = 1 + (rng.next() as usize) % 24;
        let subjects: Vec<Vec<u8>> = (0..n_seqs)
            .map(|_| {
                let len = 1 + (rng.next() as usize) % 60;
                rng.seq(&a, len)
            })
            .collect();
        check_width::<4>(
            &a,
            &p,
            &query,
            &subjects[..n_seqs.min(4)],
            &format!("r{round} L4"),
        );
        check_width::<8>(
            &a,
            &p,
            &query,
            &subjects[..n_seqs.min(8)],
            &format!("r{round} L8"),
        );
        check_width::<16>(
            &a,
            &p,
            &query,
            &subjects[..n_seqs.min(16)],
            &format!("r{round} L16"),
        );
        check_width::<32>(&a, &p, &query, &subjects, &format!("r{round} L32"));
    }
}

/// Eleven Ws and one G self-align to 11·11 + 6 = 127 = `i8::MAX` exactly:
/// every ISA must both report 127 *and* raise the saturation flag.
#[test]
fn i8_max_boundary_flags_identical_across_isas() {
    let a = Alphabet::protein();
    let p = SwParams::paper_default();
    let w = a.encode_byte(b'W').unwrap();
    let g = a.encode_byte(b'G').unwrap();
    let mut seq = vec![w; 11];
    seq.push(g);
    let short = a.encode_strict(b"MKVLITRAW").unwrap();
    let subjects = vec![seq.clone(), short];
    let qp8 = QueryProfileI8::from_wide(&QueryProfile::build(&seq, &p.matrix, &a));

    for isa in isas() {
        // SSE2's native i8 width (16) and AVX2's (32).
        let b16 = make_batch(16, &a, &subjects);
        let o16 = arch::sw_isa_narrow_qp::<16>(isa, &qp8, &b16, &p.gap);
        let b32 = make_batch(32, &a, &subjects);
        let o32 = arch::sw_isa_narrow_qp::<32>(isa, &qp8, &b32, &p.gap);
        for o in [&o16, &o32] {
            assert_eq!(o.scores[0], 127, "{isa}");
            assert!(o.saturated[0], "{isa}: exact i8::MAX must be flagged");
            assert!(!o.saturated[1], "{isa}: unsaturated lane must stay clean");
        }
    }
}

/// 2975 Ws and seven Gs self-align to 2975·11 + 7·6 = 32 767 = `i16::MAX`
/// exactly: the wide kernels must flag the lane as overflowed under every
/// ISA (one i16 pass per native width — kept lean, the sweep is large).
#[test]
fn i16_max_boundary_flags_identical_across_isas() {
    let a = Alphabet::protein();
    let p = SwParams::paper_default();
    let w = a.encode_byte(b'W').unwrap();
    let g = a.encode_byte(b'G').unwrap();
    let mut seq = vec![w; 2975];
    seq.extend(std::iter::repeat_n(g, 7));
    let subjects = vec![seq.clone()];
    let qp = QueryProfile::build(&seq, &p.matrix, &a);

    let b8 = make_batch(8, &a, &subjects);
    let base = arch::sw_isa_qp::<8>(KernelIsa::Portable, &qp, &b8, &p.gap, None);
    assert_eq!(base.scores[0], i16::MAX as i64);
    assert!(base.overflowed[0], "exact i16::MAX must be flagged");

    for isa in isas() {
        if isa == KernelIsa::Portable {
            continue;
        }
        let o = arch::sw_isa_qp::<8>(isa, &qp, &b8, &p.gap, None);
        assert_eq!(o, base, "{isa} at L=8");
        if isa == KernelIsa::Avx2 {
            let b16 = make_batch(16, &a, &subjects);
            let o = arch::sw_isa_qp::<16>(isa, &qp, &b16, &p.gap, None);
            let pb = arch::sw_isa_qp::<16>(KernelIsa::Portable, &qp, &b16, &p.gap, None);
            assert_eq!(o, pb, "avx2 at its native L=16");
            assert!(o.overflowed[0]);
        }
    }
}

/// The detected ISA must be available, and forcing portable must always
/// be accepted — the pair the CLI's `--kernel-isa` flag relies on.
#[test]
fn detection_sanity() {
    assert!(KernelIsa::detect().is_available());
    assert!(KernelIsa::Portable.is_available());
    assert_eq!(KernelIsa::from_name("AVX2"), Some(KernelIsa::Avx2));
    assert_eq!(KernelIsa::from_name("nope"), None);
}
