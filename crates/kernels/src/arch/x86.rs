//! The x86_64 intrinsic kernel bodies — SSE2 and AVX2 instantiations of
//! one shared macro.
//!
//! Each ISA module defines two thin vector newtypes (`V16`, `V8`) whose
//! methods are `#[target_feature]`-annotated wrappers over the raw
//! `std::arch` intrinsics, plus the four kernels the dispatcher in
//! [`super`] calls: `sw_qp_i16` / `sw_sp_i16` (row-blocked; one block
//! spanning the query = unblocked) and `sw_qp_i8` / `sw_sp_i8` (the
//! narrow tier, unblocked like `crate::narrow`). The DP recurrence is a
//! line-for-line translation of the portable kernels — same saturating
//! ops, same `NEG_INF` sentinels, same `vmax == MAX` overflow flagging —
//! so scores and flags are bit-identical across tiers.
//!
//! # Safety
//!
//! * Every function here carries `#[target_feature]`; the only callers
//!   are the `unsafe` dispatch sites in [`super`], each guarded by the
//!   matching runtime check (AVX2) or the x86_64 baseline ABI (SSE2).
//!   Within a module, calls between same-feature functions are safe.
//! * The raw-pointer loads/stores are wrapped in methods that take
//!   slices/arrays of the exact lane count, so bounds are checked by the
//!   slice layer before the pointer is formed.
//! * `V16::load` / `V8::load` use *aligned* vector loads. Their inputs
//!   are rows of [`sw_swdb::SequenceProfile`] / [`SequenceProfileI8`],
//!   whose storage is 64-byte aligned with rows a multiple of the vector
//!   size apart (the alignment contract documented on
//!   `SequenceProfile::row`), re-checked here with `debug_assert!`.

#![allow(unsafe_code)]

use crate::intertask::{KernelOutput, NEG_INF_I16};
use crate::narrow::{NarrowOutput, NEG_INF_I8};
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, QueryProfileI8, SequenceProfile, SequenceProfileI8};

macro_rules! isa_kernels {
    (
        feature: $feat:literal,
        vec: $vec:ty,
        lanes_i16: $l16:expr,
        lanes_i8: $l8:expr,
        setzero: $setzero:path,
        set1_epi16: $set16:path,
        adds_epi16: $adds16:path,
        subs_epi16: $subs16:path,
        max_epi16: $max16:path,
        set1_epi8: $set8:path,
        adds_epi8: $adds8:path,
        subs_epi8: $subs8:path,
        max_epi8: $max8:path,
        load: $load:path,
        loadu: $loadu:path,
        storeu: $storeu:path,
    ) => {
        /// i16 lanes per vector.
        pub(crate) const LANES_I16: usize = $l16;
        /// i8 lanes per vector.
        pub(crate) const LANES_I8: usize = $l8;

        /// A vector of [`LANES_I16`] × i16.
        #[derive(Clone, Copy)]
        struct V16($vec);

        impl V16 {
            #[inline]
            #[target_feature(enable = $feat)]
            fn zero() -> V16 {
                V16($setzero())
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn splat(v: i16) -> V16 {
                V16($set16(v))
            }

            /// Aligned load of one SP profile row.
            #[inline]
            #[target_feature(enable = $feat)]
            fn load(s: &[i16]) -> V16 {
                let p = s[..LANES_I16].as_ptr();
                debug_assert_eq!(
                    p as usize % std::mem::size_of::<$vec>(),
                    0,
                    "SP row violates the profile alignment contract"
                );
                // SAFETY: the slice index above guarantees LANES_I16
                // readable elements; alignment holds by the profile
                // storage contract (debug-asserted).
                V16(unsafe { $load(p.cast()) })
            }

            /// Gather for the QP flavour: scalar table lookups into a
            /// stack buffer, then one unaligned load. Panics if fewer
            /// than [`LANES_I16`] indices are given (same contract as the
            /// portable `I16s::gather`).
            #[inline]
            #[target_feature(enable = $feat)]
            fn gather(table: &[i16], indices: &[u8]) -> V16 {
                let mut buf = [0i16; LANES_I16];
                for (o, &ix) in buf.iter_mut().zip(&indices[..LANES_I16]) {
                    *o = table[ix as usize];
                }
                // SAFETY: `buf` is exactly one vector of valid memory.
                V16(unsafe { $loadu(buf.as_ptr().cast()) })
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn adds(self, o: V16) -> V16 {
                V16($adds16(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn subs(self, o: V16) -> V16 {
                V16($subs16(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn max(self, o: V16) -> V16 {
                V16($max16(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn store(self, out: &mut [i16; LANES_I16]) {
                // SAFETY: `out` is exactly one vector of writable memory.
                unsafe { $storeu(out.as_mut_ptr().cast(), self.0) }
            }
        }

        /// A vector of [`LANES_I8`] × i8.
        #[derive(Clone, Copy)]
        struct V8($vec);

        impl V8 {
            #[inline]
            #[target_feature(enable = $feat)]
            fn zero() -> V8 {
                V8($setzero())
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn splat(v: i8) -> V8 {
                V8($set8(v))
            }

            /// Aligned load of one narrow SP profile row.
            #[inline]
            #[target_feature(enable = $feat)]
            fn load(s: &[i8]) -> V8 {
                let p = s[..LANES_I8].as_ptr();
                debug_assert_eq!(
                    p as usize % std::mem::size_of::<$vec>(),
                    0,
                    "SP row violates the profile alignment contract"
                );
                // SAFETY: as for `V16::load`.
                V8(unsafe { $load(p.cast()) })
            }

            /// Panics on short `indices`, like the portable gather.
            #[inline]
            #[target_feature(enable = $feat)]
            fn gather(table: &[i8], indices: &[u8]) -> V8 {
                let mut buf = [0i8; LANES_I8];
                for (o, &ix) in buf.iter_mut().zip(&indices[..LANES_I8]) {
                    *o = table[ix as usize];
                }
                // SAFETY: `buf` is exactly one vector of valid memory.
                V8(unsafe { $loadu(buf.as_ptr().cast()) })
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn adds(self, o: V8) -> V8 {
                V8($adds8(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn subs(self, o: V8) -> V8 {
                V8($subs8(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn max(self, o: V8) -> V8 {
                V8($max8(self.0, o.0))
            }

            #[inline]
            #[target_feature(enable = $feat)]
            fn store(self, out: &mut [i8; LANES_I8]) {
                // SAFETY: `out` is exactly one vector of writable memory.
                unsafe { $storeu(out.as_mut_ptr().cast(), self.0) }
            }
        }

        #[inline]
        #[target_feature(enable = $feat)]
        fn output_i16(vmax: V16, real_lanes: usize) -> KernelOutput {
            let mut buf = [0i16; LANES_I16];
            vmax.store(&mut buf);
            let mut scores = Vec::with_capacity(real_lanes);
            let mut overflowed = Vec::with_capacity(real_lanes);
            for &v in &buf[..real_lanes] {
                scores.push(v as i64);
                overflowed.push(v == i16::MAX);
            }
            KernelOutput { scores, overflowed }
        }

        #[inline]
        #[target_feature(enable = $feat)]
        fn output_i8(vmax: V8, real_lanes: usize) -> NarrowOutput {
            let mut buf = [0i8; LANES_I8];
            vmax.store(&mut buf);
            let mut scores = Vec::with_capacity(real_lanes);
            let mut saturated = Vec::with_capacity(real_lanes);
            for &v in &buf[..real_lanes] {
                scores.push(v as i64);
                saturated.push(v == i8::MAX);
            }
            NarrowOutput { scores, saturated }
        }

        /// Row-blocked i16 DP sweep over an arbitrary substitution-vector
        /// closure-free source, shared by the QP and SP kernels below via
        /// duplication of the two-line inner difference.
        macro_rules! dp_i16 {
            ($m:expr, $n:expr, $batch:expr, $gap:expr, $block_rows:expr, $subst:expr) => {{
                let m: usize = $m;
                let n: usize = $n;
                assert!($block_rows > 0, "block_rows must be positive");
                let first = V16::splat($gap.first() as i16);
                let extend = V16::splat($gap.extend as i16);
                let zero = V16::zero();
                let neg_inf = V16::splat(NEG_INF_I16);
                let mut bh = vec![zero; n]; //   H boundary row between blocks
                let mut be = vec![neg_inf; n]; // E boundary row between blocks
                let mut h_col: Vec<V16> = Vec::new();
                let mut f_col: Vec<V16> = Vec::new();
                let mut vmax = zero;
                let mut i0 = 0usize;
                while i0 < m {
                    let i1 = i0.saturating_add($block_rows).min(m);
                    let rows = i1 - i0;
                    h_col.clear();
                    h_col.resize(rows, zero);
                    f_col.clear();
                    f_col.resize(rows, neg_inf);
                    let mut diag_carry = zero; // H[i0-1][j-1], j = -1 → 0
                    for j in 0..n {
                        let old_bh = bh[j]; // H[i0-1][j]
                        let old_be = be[j]; // E[i0-1][j]
                        let mut h_diag = diag_carry;
                        let mut h_up = old_bh;
                        let mut e_run = old_be;
                        for k in 0..rows {
                            let v: V16 = $subst(i0 + k, j);
                            let h_prev = h_col[k];
                            let f = h_prev.subs(first).max(f_col[k].subs(extend));
                            let e = h_up.subs(first).max(e_run.subs(extend));
                            let h = h_diag.adds(v).max(e).max(f).max(zero);
                            h_diag = h_prev;
                            h_col[k] = h;
                            f_col[k] = f;
                            e_run = e;
                            h_up = h;
                            vmax = vmax.max(h);
                        }
                        bh[j] = h_up; //  H[i1-1][j] for the next block
                        be[j] = e_run; // E[i1-1][j]
                        diag_carry = old_bh;
                    }
                    i0 = i1;
                }
                output_i16(vmax, $batch.real_lanes())
            }};
        }

        /// i16 kernel, query-profile flavour (per-column gather).
        #[target_feature(enable = $feat)]
        pub(crate) fn sw_qp_i16(
            qp: &QueryProfile,
            batch: &LaneBatch,
            gap: &GapPenalty,
            block_rows: usize,
        ) -> KernelOutput {
            assert_eq!(
                batch.lanes(),
                LANES_I16,
                "batch lane width must match kernel width"
            );
            dp_i16!(
                qp.query_len(),
                batch.padded_len(),
                batch,
                gap,
                block_rows,
                |i, j| V16::gather(qp.row(i), batch.row(j))
            )
        }

        /// i16 kernel, sequence-profile flavour (aligned contiguous load).
        #[target_feature(enable = $feat)]
        pub(crate) fn sw_sp_i16(
            query: &[u8],
            sp: &SequenceProfile,
            batch: &LaneBatch,
            gap: &GapPenalty,
            block_rows: usize,
        ) -> KernelOutput {
            assert_eq!(
                batch.lanes(),
                LANES_I16,
                "batch lane width must match kernel width"
            );
            assert_eq!(
                sp.lanes(),
                LANES_I16,
                "profile lane width must match kernel width"
            );
            assert_eq!(
                sp.padded_len(),
                batch.padded_len(),
                "profile/batch shape mismatch"
            );
            dp_i16!(
                query.len(),
                batch.padded_len(),
                batch,
                gap,
                block_rows,
                |i, j| V16::load(sp.row(query[i], j))
            )
        }

        /// Unblocked i8 DP sweep (the narrow tier mirrors
        /// `crate::narrow`, which never blocks).
        macro_rules! dp_i8 {
            ($m:expr, $n:expr, $batch:expr, $gap:expr, $subst:expr) => {{
                let m: usize = $m;
                let n: usize = $n;
                let first = V8::splat($gap.first().clamp(0, 127) as i8);
                let extend = V8::splat($gap.extend.clamp(0, 127) as i8);
                let zero = V8::zero();
                let neg_inf = V8::splat(NEG_INF_I8);
                let mut h_col = vec![zero; m];
                let mut f_col = vec![neg_inf; m];
                let mut vmax = zero;
                for j in 0..n {
                    let mut h_diag = zero;
                    let mut h_up = zero;
                    let mut e_run = neg_inf;
                    for (i, (hc, fc)) in h_col.iter_mut().zip(f_col.iter_mut()).enumerate() {
                        let v: V8 = $subst(i, j);
                        let h_prev = *hc;
                        let f = h_prev.subs(first).max(fc.subs(extend));
                        let e = h_up.subs(first).max(e_run.subs(extend));
                        let h = h_diag.adds(v).max(e).max(f).max(zero);
                        h_diag = h_prev;
                        *hc = h;
                        *fc = f;
                        e_run = e;
                        h_up = h;
                        vmax = vmax.max(h);
                    }
                }
                output_i8(vmax, $batch.real_lanes())
            }};
        }

        /// i8 narrow kernel, query-profile flavour.
        #[target_feature(enable = $feat)]
        pub(crate) fn sw_qp_i8(
            qp8: &QueryProfileI8,
            batch: &LaneBatch,
            gap: &GapPenalty,
        ) -> NarrowOutput {
            assert_eq!(
                batch.lanes(),
                LANES_I8,
                "batch lane width must match kernel width"
            );
            dp_i8!(qp8.query_len(), batch.padded_len(), batch, gap, |i, j| {
                V8::gather(qp8.row(i), batch.row(j))
            })
        }

        /// i8 narrow kernel, sequence-profile flavour.
        #[target_feature(enable = $feat)]
        pub(crate) fn sw_sp_i8(
            query: &[u8],
            sp8: &SequenceProfileI8,
            batch: &LaneBatch,
            gap: &GapPenalty,
        ) -> NarrowOutput {
            assert_eq!(
                batch.lanes(),
                LANES_I8,
                "batch lane width must match kernel width"
            );
            assert_eq!(
                sp8.lanes(),
                LANES_I8,
                "profile lane width must match kernel width"
            );
            assert_eq!(
                sp8.padded_len(),
                batch.padded_len(),
                "profile/batch shape mismatch"
            );
            dp_i8!(query.len(), batch.padded_len(), batch, gap, |i, j| {
                V8::load(sp8.row(query[i], j))
            })
        }
    };
}

/// 128-bit SSE2 kernels: 8 × i16, 16 × i8 (SWIPE's original widths).
pub(crate) mod sse2 {
    use super::*;
    use std::arch::x86_64::*;

    /// SSE2 has no signed-byte max (`pmaxsb` is SSE4.1); build it from a
    /// signed compare and bit selection, exactly as SWIPE-era code did.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn max_epi8_sse2(a: __m128i, b: __m128i) -> __m128i {
        let gt = _mm_cmpgt_epi8(a, b);
        _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b))
    }

    isa_kernels! {
        feature: "sse2",
        vec: __m128i,
        lanes_i16: 8,
        lanes_i8: 16,
        setzero: _mm_setzero_si128,
        set1_epi16: _mm_set1_epi16,
        adds_epi16: _mm_adds_epi16,
        subs_epi16: _mm_subs_epi16,
        max_epi16: _mm_max_epi16,
        set1_epi8: _mm_set1_epi8,
        adds_epi8: _mm_adds_epi8,
        subs_epi8: _mm_subs_epi8,
        max_epi8: max_epi8_sse2,
        load: _mm_load_si128,
        loadu: _mm_loadu_si128,
        storeu: _mm_storeu_si128,
    }
}

/// 256-bit AVX2 kernels: 16 × i16, 32 × i8 — the paper's AVX lane widths.
pub(crate) mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    isa_kernels! {
        feature: "avx2",
        vec: __m256i,
        lanes_i16: 16,
        lanes_i8: 32,
        setzero: _mm256_setzero_si256,
        set1_epi16: _mm256_set1_epi16,
        adds_epi16: _mm256_adds_epi16,
        subs_epi16: _mm256_subs_epi16,
        max_epi16: _mm256_max_epi16,
        set1_epi8: _mm256_set1_epi8,
        adds_epi8: _mm256_adds_epi8,
        subs_epi8: _mm256_subs_epi8,
        max_epi8: _mm256_max_epi8,
        load: _mm256_load_si256,
        loadu: _mm256_loadu_si256,
        storeu: _mm256_storeu_si256,
    }
}
