//! Real `std::arch` intrinsic kernels with runtime ISA dispatch.
//!
//! The portable [`crate::lanes`] kernels *hope* LLVM autovectorizes their
//! element loops; this module is the genuine intrinsic tier the paper's
//! fastest variants are built from (§IV-C): hand-written SSE2 (8 × i16 /
//! 16 × i8) and AVX2 (16 × i16 / 32 × i8) inter-task kernels behind
//! [`is_x86_feature_detected!`] runtime dispatch, with the portable
//! kernels as the guaranteed fallback on every other target, lane width,
//! or forced-portable run.
//!
//! Dispatch rules (see also `DESIGN.md`):
//!
//! * [`KernelIsa::detect`] picks the best ISA the host supports from
//!   hardware feature probes alone — it never reads the environment, so
//!   a long-lived daemon can resolve an ISA per request without two
//!   concurrent searches observing different answers. Front-ends
//!   (`--kernel-isa`, or the CLI's startup-time `SW_KERNEL_ISA` read)
//!   force one by threading an explicit [`KernelIsa`] through
//!   `SearchConfig`.
//! * An ISA engages only at its native lane width — AVX2 at 16 × i16 /
//!   32 × i8, SSE2 at 8 × i16 / 16 × i8. An AVX2 selection at SSE width
//!   runs the 128-bit kernels (AVX2 implies SSE2); anything else falls
//!   back to the portable kernels.
//! * Results are **identical** across every path — scores *and*
//!   overflow/saturation flags — enforced by the differential suite in
//!   `tests/isa_differential.rs`.
//!
//! Safety: the intrinsic bodies live in `#[target_feature]` functions and
//! are reached only through the `unsafe` calls in this module, each
//! guarded by the matching runtime/ABI feature check on the same line.

#![allow(unsafe_code)]

use crate::blocked::{sw_blocked_qp, sw_blocked_sp, BlockedWorkspace};
use crate::intertask::{sw_lanes_qp, sw_lanes_sp, KernelOutput, Workspace};
use crate::narrow::{
    cascade, sw_narrow_qp, sw_narrow_sp, CascadeStats, NarrowOutput, NarrowWorkspace,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, QueryProfileI8, SequenceProfile, SequenceProfileI8};

#[cfg(target_arch = "x86_64")]
mod x86;

/// Which instruction set the inter-task kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelIsa {
    /// The portable element-loop kernels (work on every target).
    Portable,
    /// 128-bit SSE2 intrinsics: 8 × i16, 16 × i8.
    Sse2,
    /// 256-bit AVX2 intrinsics: 16 × i16, 32 × i8 — the paper's AVX lane
    /// widths.
    Avx2,
}

impl KernelIsa {
    /// The canonical lower-case name (`portable` / `sse2` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            KernelIsa::Portable => "portable",
            KernelIsa::Sse2 => "sse2",
            KernelIsa::Avx2 => "avx2",
        }
    }

    /// Parse a canonical name (as accepted by `--kernel-isa`).
    pub fn from_name(name: &str) -> Option<KernelIsa> {
        match name.to_ascii_lowercase().as_str() {
            "portable" => Some(KernelIsa::Portable),
            "sse2" => Some(KernelIsa::Sse2),
            "avx2" => Some(KernelIsa::Avx2),
            _ => None,
        }
    }

    /// True when this ISA can actually run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelIsa::Portable => true,
            // SSE2 is part of the x86_64 ABI baseline — always present.
            KernelIsa::Sse2 => cfg!(target_arch = "x86_64"),
            KernelIsa::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// The best ISA the host supports, from hardware probes alone.
    ///
    /// Deliberately pure: no environment reads, no globals. Process-level
    /// overrides (`SW_KERNEL_ISA`, `--kernel-isa`) are resolved once at
    /// front-end startup and travel through `SearchConfig`, so the
    /// library path is daemon-safe — concurrent requests can never race
    /// on an env mutation mid-run.
    pub fn detect() -> KernelIsa {
        if KernelIsa::Avx2.is_available() {
            KernelIsa::Avx2
        } else if KernelIsa::Sse2.is_available() {
            KernelIsa::Sse2
        } else {
            KernelIsa::Portable
        }
    }
}

impl Default for KernelIsa {
    fn default() -> Self {
        KernelIsa::detect()
    }
}

impl fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Effective row-block size: `None` means unblocked, which the intrinsic
/// kernels express as one block spanning the whole query.
fn eff_block(block_rows: Option<usize>, m: usize) -> usize {
    block_rows.unwrap_or(usize::MAX).min(m.max(1))
}

/// i16 inter-task kernel, QP flavour, dispatched on `isa`.
///
/// `block_rows: None` runs unblocked, `Some(b)` row-blocked — scores and
/// overflow flags are identical either way and identical across ISAs.
pub fn sw_isa_qp<const L: usize>(
    isa: KernelIsa,
    qp: &QueryProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    block_rows: Option<usize>,
) -> KernelOutput {
    #[cfg(target_arch = "x86_64")]
    {
        let block = eff_block(block_rows, qp.query_len());
        match isa {
            KernelIsa::Avx2 if L == x86::avx2::LANES_I16 && isa.is_available() => {
                // SAFETY: AVX2 presence verified by `is_available` above.
                return unsafe { x86::avx2::sw_qp_i16(qp, batch, gap, block) };
            }
            KernelIsa::Avx2 | KernelIsa::Sse2 if L == x86::sse2::LANES_I16 => {
                // SAFETY: SSE2 is part of the x86_64 baseline ABI.
                return unsafe { x86::sse2::sw_qp_i16(qp, batch, gap, block) };
            }
            _ => {}
        }
    }
    match block_rows {
        None => sw_lanes_qp::<L>(qp, batch, gap, &mut Workspace::new()),
        Some(b) => sw_blocked_qp::<L>(qp, batch, gap, b, &mut BlockedWorkspace::new()),
    }
}

/// i16 inter-task kernel, SP flavour, dispatched on `isa`.
pub fn sw_isa_sp<const L: usize>(
    isa: KernelIsa,
    query: &[u8],
    sp: &SequenceProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    block_rows: Option<usize>,
) -> KernelOutput {
    #[cfg(target_arch = "x86_64")]
    {
        let block = eff_block(block_rows, query.len());
        match isa {
            KernelIsa::Avx2 if L == x86::avx2::LANES_I16 && isa.is_available() => {
                // SAFETY: AVX2 presence verified by `is_available` above.
                return unsafe { x86::avx2::sw_sp_i16(query, sp, batch, gap, block) };
            }
            KernelIsa::Avx2 | KernelIsa::Sse2 if L == x86::sse2::LANES_I16 => {
                // SAFETY: SSE2 is part of the x86_64 baseline ABI.
                return unsafe { x86::sse2::sw_sp_i16(query, sp, batch, gap, block) };
            }
            _ => {}
        }
    }
    match block_rows {
        None => sw_lanes_sp::<L>(query, sp, batch, gap, &mut Workspace::new()),
        Some(b) => sw_blocked_sp::<L>(query, sp, batch, gap, b, &mut BlockedWorkspace::new()),
    }
}

/// i8 narrow kernel, QP flavour, dispatched on `isa`.
pub fn sw_isa_narrow_qp<const L: usize>(
    isa: KernelIsa,
    qp8: &QueryProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
) -> NarrowOutput {
    #[cfg(target_arch = "x86_64")]
    {
        match isa {
            KernelIsa::Avx2 if L == x86::avx2::LANES_I8 && isa.is_available() => {
                // SAFETY: AVX2 presence verified by `is_available` above.
                return unsafe { x86::avx2::sw_qp_i8(qp8, batch, gap) };
            }
            KernelIsa::Avx2 | KernelIsa::Sse2 if L == x86::sse2::LANES_I8 => {
                // SAFETY: SSE2 is part of the x86_64 baseline ABI.
                return unsafe { x86::sse2::sw_qp_i8(qp8, batch, gap) };
            }
            _ => {}
        }
    }
    sw_narrow_qp::<L>(qp8, batch, gap, &mut NarrowWorkspace::new())
}

/// i8 narrow kernel, SP flavour, dispatched on `isa`.
pub fn sw_isa_narrow_sp<const L: usize>(
    isa: KernelIsa,
    query: &[u8],
    sp8: &SequenceProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
) -> NarrowOutput {
    #[cfg(target_arch = "x86_64")]
    {
        match isa {
            KernelIsa::Avx2 if L == x86::avx2::LANES_I8 && isa.is_available() => {
                // SAFETY: AVX2 presence verified by `is_available` above.
                return unsafe { x86::avx2::sw_sp_i8(query, sp8, batch, gap) };
            }
            KernelIsa::Avx2 | KernelIsa::Sse2 if L == x86::sse2::LANES_I8 => {
                // SAFETY: SSE2 is part of the x86_64 baseline ABI.
                return unsafe { x86::sse2::sw_sp_i8(query, sp8, batch, gap) };
            }
            _ => {}
        }
    }
    sw_narrow_sp::<L>(query, sp8, batch, gap, &mut NarrowWorkspace::new())
}

/// ISA-dispatched dual-precision cascade, QP flavour (the i8 → i16 tiers
/// of `crate::narrow`, each running on `isa`).
pub fn sw_isa_adaptive_qp<const L: usize>(
    isa: KernelIsa,
    qp: &QueryProfile,
    qp8: &QueryProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
) -> (KernelOutput, CascadeStats) {
    let narrow = sw_isa_narrow_qp::<L>(isa, qp8, batch, gap);
    cascade(narrow, || sw_isa_qp::<L>(isa, qp, batch, gap, None))
}

/// ISA-dispatched dual-precision cascade, SP flavour.
pub fn sw_isa_adaptive_sp<const L: usize>(
    isa: KernelIsa,
    query: &[u8],
    sp: &SequenceProfile,
    sp8: &SequenceProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
) -> (KernelOutput, CascadeStats) {
    let narrow = sw_isa_narrow_sp::<L>(isa, query, sp8, batch, gap);
    cascade(narrow, || sw_isa_sp::<L>(isa, query, sp, batch, gap, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::SwParams;
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;

    #[test]
    fn isa_names_roundtrip() {
        for isa in [KernelIsa::Portable, KernelIsa::Sse2, KernelIsa::Avx2] {
            assert_eq!(KernelIsa::from_name(isa.name()), Some(isa));
            assert_eq!(isa.to_string(), isa.name());
        }
        assert_eq!(KernelIsa::from_name("AVX2"), Some(KernelIsa::Avx2));
        assert_eq!(KernelIsa::from_name("avx512"), None);
    }

    #[test]
    fn detected_isa_is_available() {
        let isa = KernelIsa::detect();
        assert!(isa.is_available());
        assert!(KernelIsa::Portable.is_available());
        #[cfg(target_arch = "x86_64")]
        assert!(KernelIsa::Sse2.is_available());
    }

    #[test]
    fn detect_is_hardware_only_and_ignores_the_environment() {
        // The env override moved to front-end startup; the library must
        // answer from feature probes alone (daemon-safe, race-free).
        std::env::set_var("SW_KERNEL_ISA", "portable");
        let isa = KernelIsa::detect();
        std::env::remove_var("SW_KERNEL_ISA");
        #[cfg(target_arch = "x86_64")]
        assert_ne!(isa, KernelIsa::Portable, "env must not force the ISA here");
        assert!(isa.is_available());
    }

    #[test]
    fn unavailable_or_unmatched_widths_fall_back_to_portable() {
        // Lane width 4 matches no intrinsic kernel, so every ISA must
        // produce the portable result, blocked and unblocked.
        let a = Alphabet::protein();
        let p = SwParams::paper_default();
        let query = a.encode_strict(b"MKVLITRAWQESTNHYFPGD").unwrap();
        let subject = a.encode_strict(b"MKVLITRAW").unwrap();
        let batch = LaneBatch::pack(4, &[(SeqId(0), &subject[..])], pad_code(&a));
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let reference = sw_isa_qp::<4>(KernelIsa::Portable, &qp, &batch, &p.gap, None);
        for isa in [KernelIsa::Sse2, KernelIsa::Avx2] {
            for block in [None, Some(5)] {
                let out = sw_isa_qp::<4>(isa, &qp, &batch, &p.gap, block);
                assert_eq!(out, reference, "isa {isa} block {block:?}");
            }
        }
    }
}
