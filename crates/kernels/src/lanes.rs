//! Portable fixed-width `i16` vectors — the workspace's SIMD substrate.
//!
//! The paper's "intrinsic" kernels are written with AVX (16 × i16) and
//! MIC (32 × i16) intrinsics. Stable Rust has no `std::simd`, so this
//! module provides [`I16s`], a `#[repr(align)]`-free const-generic vector
//! whose operations are plain element loops. With `-O` LLVM reliably
//! autovectorizes these into the target's native SIMD (verified in the
//! criterion benches); the *code structure* — explicit vector values,
//! saturating lane ops, no per-lane branching — is exactly the structure
//! of the intrinsic kernels in the paper, which is what distinguishes the
//! `intrinsic` variants from the `guided` ones in this reproduction.
//!
//! All arithmetic is **saturating**: the inter-task kernels rely on scores
//! clamping at `i16::MAX` so overflow can be detected afterwards (see
//! [`crate::overflow`]) instead of wrapping silently.

use std::ops::{Index, IndexMut};

/// A vector of `L` lanes of `i16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I16s<const L: usize>(pub [i16; L]);

impl<const L: usize> I16s<L> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        I16s([0; L])
    }

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i16) -> Self {
        I16s([v; L])
    }

    /// Load `L` lanes from a slice (the contiguous SP profile load).
    ///
    /// # Panics
    /// Panics if `s` holds fewer than `L` elements.
    #[inline(always)]
    pub fn load(s: &[i16]) -> Self {
        let mut out = [0i16; L];
        out.copy_from_slice(&s[..L]);
        I16s(out)
    }

    /// Gather `L` lanes from `table` at `indices` (the QP profile access —
    /// one `vgather` on MIC, an unavoidable shuffle sequence on AVX; the
    /// perf model charges the corresponding penalty).
    ///
    /// # Panics
    /// Panics if `indices` holds fewer than `L` elements — a short index
    /// slice would otherwise leave trailing lanes scoring `table[0]`.
    #[inline(always)]
    pub fn gather(table: &[i16], indices: &[u8]) -> Self {
        let mut out = [0i16; L];
        for (o, &ix) in out.iter_mut().zip(&indices[..L]) {
            *o = table[ix as usize];
        }
        I16s(out)
    }

    /// Lane-wise saturating add.
    #[inline(always)]
    pub fn sat_add(self, rhs: Self) -> Self {
        let mut out = [0i16; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.saturating_add(b);
        }
        I16s(out)
    }

    /// Lane-wise saturating subtract.
    #[inline(always)]
    pub fn sat_sub(self, rhs: Self) -> Self {
        let mut out = [0i16; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.saturating_sub(b);
        }
        I16s(out)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0i16; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.max(b);
        }
        I16s(out)
    }

    /// Lane-wise maximum against zero (the `max(0, …)` of Eq. 2).
    #[inline(always)]
    pub fn max_zero(self) -> Self {
        let mut out = [0i16; L];
        for (o, a) in out.iter_mut().zip(self.0) {
            *o = a.max(0);
        }
        I16s(out)
    }

    /// Horizontal maximum across lanes.
    #[inline(always)]
    pub fn hmax(self) -> i16 {
        let mut m = i16::MIN;
        for a in self.0 {
            m = m.max(a);
        }
        m
    }

    /// Shift lanes up by one, inserting `v` at lane 0 (the cross-lane
    /// carry of the striped kernel: `out[0] = v`, `out[l] = self[l-1]`).
    #[inline(always)]
    pub fn shift_in(self, v: i16) -> Self {
        let mut out = [0i16; L];
        out[0] = v;
        out[1..L].copy_from_slice(&self.0[..L - 1]);
        I16s(out)
    }

    /// True if any lane is strictly greater than the corresponding lane of
    /// `rhs` (the lazy-F continuation test of the striped kernel).
    #[inline(always)]
    pub fn any_gt(self, rhs: Self) -> bool {
        self.0.iter().zip(rhs.0.iter()).any(|(a, b)| a > b)
    }

    /// True if any lane equals `v` (saturation detection).
    #[inline(always)]
    pub fn any_eq(self, v: i16) -> bool {
        self.0.contains(&v)
    }

    /// Store lanes into a slice.
    ///
    /// # Panics
    /// Panics if `out` holds fewer than `L` elements.
    #[inline(always)]
    pub fn store(self, out: &mut [i16]) {
        out[..L].copy_from_slice(&self.0);
    }

    /// Lane count `L`.
    #[inline(always)]
    pub const fn lanes() -> usize {
        L
    }
}

impl<const L: usize> Index<usize> for I16s<L> {
    type Output = i16;
    #[inline(always)]
    fn index(&self, i: usize) -> &i16 {
        &self.0[i]
    }
}

impl<const L: usize> IndexMut<usize> for I16s<L> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut i16 {
        &mut self.0[i]
    }
}

/// A vector of `L` lanes of `i8` — the narrow tier of the SWIPE-style
/// dual-precision cascade (see `crate::overflow`). On real hardware an
/// i8 kernel processes twice the lanes of the i16 one; here the width is
/// whatever the batch was packed for, and the perf model accounts the
/// doubling separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I8s<const L: usize>(pub [i8; L]);

impl<const L: usize> I8s<L> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        I8s([0; L])
    }

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i8) -> Self {
        I8s([v; L])
    }

    /// Load `L` lanes from a slice.
    ///
    /// # Panics
    /// Panics if `s` holds fewer than `L` elements.
    #[inline(always)]
    pub fn load(s: &[i8]) -> Self {
        let mut out = [0i8; L];
        out.copy_from_slice(&s[..L]);
        I8s(out)
    }

    /// Gather `L` lanes from `table` at `indices`.
    ///
    /// # Panics
    /// Panics if `indices` holds fewer than `L` elements (same contract as
    /// [`I8s::load`]).
    #[inline(always)]
    pub fn gather(table: &[i8], indices: &[u8]) -> Self {
        let mut out = [0i8; L];
        for (o, &ix) in out.iter_mut().zip(&indices[..L]) {
            *o = table[ix as usize];
        }
        I8s(out)
    }

    /// Lane-wise saturating add.
    #[inline(always)]
    pub fn sat_add(self, rhs: Self) -> Self {
        let mut out = [0i8; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.saturating_add(b);
        }
        I8s(out)
    }

    /// Lane-wise saturating subtract.
    #[inline(always)]
    pub fn sat_sub(self, rhs: Self) -> Self {
        let mut out = [0i8; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.saturating_sub(b);
        }
        I8s(out)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0i8; L];
        for ((o, a), b) in out.iter_mut().zip(self.0).zip(rhs.0) {
            *o = a.max(b);
        }
        I8s(out)
    }

    /// Lane-wise maximum against zero.
    #[inline(always)]
    pub fn max_zero(self) -> Self {
        let mut out = [0i8; L];
        for (o, a) in out.iter_mut().zip(self.0) {
            *o = a.max(0);
        }
        I8s(out)
    }
}

/// Lane widths evaluated by the paper.
pub mod widths {
    /// 256-bit AVX at 16-bit elements (the Xeon E5-2670).
    pub const AVX_I16: usize = 16;
    /// 512-bit MIC at 16-bit elements (the Xeon Phi).
    pub const MIC_I16: usize = 32;
    /// 128-bit SSE at 16-bit elements (SWIPE's original target).
    pub const SSE_I16: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_zero() {
        let v = I16s::<8>::splat(3);
        assert_eq!(v.0, [3; 8]);
        assert_eq!(I16s::<8>::zero().0, [0; 8]);
    }

    #[test]
    fn load_store_roundtrip() {
        let data: Vec<i16> = (0..16).collect();
        let v = I16s::<16>::load(&data);
        let mut out = [0i16; 16];
        v.store(&mut out);
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn gather_indexes_table() {
        let table: Vec<i16> = (0..10).map(|x| x * 10).collect();
        let idx = [3u8, 0, 9, 1];
        let v = I16s::<4>::gather(&table, &idx);
        assert_eq!(v.0, [30, 0, 90, 10]);
    }

    #[test]
    #[should_panic]
    fn gather_panics_on_short_indices() {
        // A short index slice used to silently leave trailing lanes at
        // table[0]; it must fail loudly like `load` does.
        let table: Vec<i16> = (0..10).collect();
        let _ = I16s::<4>::gather(&table, &[1u8, 2]);
    }

    #[test]
    #[should_panic]
    fn i8_gather_panics_on_short_indices() {
        let table: Vec<i8> = (0..10).collect();
        let _ = I8s::<4>::gather(&table, &[1u8, 2]);
    }

    #[test]
    fn saturating_add_clamps() {
        let a = I16s::<4>::splat(i16::MAX - 1);
        let b = I16s::<4>::splat(10);
        assert_eq!(a.sat_add(b).0, [i16::MAX; 4]);
        let c = I16s::<4>::splat(i16::MIN + 1);
        assert_eq!(c.sat_sub(I16s::splat(10)).0, [i16::MIN; 4]);
    }

    #[test]
    fn max_and_max_zero() {
        let a = I16s::<4>([1, -5, 3, 0]);
        let b = I16s::<4>([0, 2, -7, 0]);
        assert_eq!(a.max(b).0, [1, 2, 3, 0]);
        assert_eq!(a.max_zero().0, [1, 0, 3, 0]);
    }

    #[test]
    fn hmax_finds_maximum() {
        let v = I16s::<8>([-3, 7, 2, -9, 7, 0, 1, 5]);
        assert_eq!(v.hmax(), 7);
        assert_eq!(I16s::<4>::splat(i16::MIN).hmax(), i16::MIN);
    }

    #[test]
    fn any_eq_detects_saturation() {
        let mut v = I16s::<4>::splat(5);
        assert!(!v.any_eq(i16::MAX));
        v[2] = i16::MAX;
        assert!(v.any_eq(i16::MAX));
    }

    #[test]
    fn index_access() {
        let mut v = I16s::<4>::zero();
        v[1] = 42;
        assert_eq!(v[1], 42);
    }

    #[test]
    fn i8_lane_ops() {
        let a = I8s::<4>([1, -5, 120, 0]);
        let b = I8s::<4>([0, 2, 20, 0]);
        assert_eq!(a.max(b).0, [1, 2, 120, 0]);
        assert_eq!(a.max_zero().0, [1, 0, 120, 0]);
        assert_eq!(a.sat_add(b).0, [1, -3, i8::MAX, 0]);
        assert_eq!(
            I8s::<4>::splat(i8::MIN).sat_sub(I8s::splat(10)).0,
            [i8::MIN; 4]
        );
        let table: Vec<i8> = (0..10).map(|x| x as i8 * 3).collect();
        assert_eq!(I8s::<3>::gather(&table, &[2, 0, 9]).0, [6, 0, 27]);
        let data = [5i8, 6, 7, 8];
        assert_eq!(I8s::<4>::load(&data).0, data);
        assert_eq!(I8s::<2>::zero().0, [0, 0]);
    }

    #[test]
    fn works_at_all_paper_widths() {
        // Compile-time exercise of the three lane widths used in the repo.
        assert_eq!(I16s::<{ widths::SSE_I16 }>::lanes(), 8);
        assert_eq!(I16s::<{ widths::AVX_I16 }>::lanes(), 16);
        assert_eq!(I16s::<{ widths::MIC_I16 }>::lanes(), 32);
    }
}
