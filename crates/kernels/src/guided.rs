//! "Guided vectorization" kernels — the paper's `simd-QP` / `simd-SP`
//! variants.
//!
//! In the paper these are the portable code paths: the same C loop nest
//! annotated with `#pragma omp simd`, leaving vectorization to the
//! compiler. The Rust analogue is the idiomatic flat-slice loop written so
//! LLVM *may* autovectorize it: per-lane inner loops over `&[i16]` slices,
//! no explicit vector values, no hand-scheduled gathers. Semantically the
//! result is identical to [`crate::intertask`] — the equivalence tests
//! enforce that — but the code *shape* is the compiler-guided one, and the
//! performance model charges it the compiler-vectorization efficiency the
//! paper measured (≈½ of intrinsic on the Xeon, ≈0.4× on the Phi).

use crate::intertask::{KernelOutput, NEG_INF_I16};
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

/// Flat scratch arrays for the guided kernels (lane-major rows of `L`).
#[derive(Debug, Default)]
pub struct GuidedWorkspace {
    h_col: Vec<i16>,
    f_col: Vec<i16>,
    h_diag: Vec<i16>,
    h_up: Vec<i16>,
    e_run: Vec<i16>,
    v_row: Vec<i16>,
    vmax: Vec<i16>,
}

impl GuidedWorkspace {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, m: usize, lanes: usize) {
        self.h_col.clear();
        self.h_col.resize(m * lanes, 0);
        self.f_col.clear();
        self.f_col.resize(m * lanes, NEG_INF_I16);
        self.h_diag.clear();
        self.h_diag.resize(lanes, 0);
        self.h_up.clear();
        self.h_up.resize(lanes, 0);
        self.e_run.clear();
        self.e_run.resize(lanes, NEG_INF_I16);
        self.v_row.clear();
        self.v_row.resize(lanes, 0);
        self.vmax.clear();
        self.vmax.resize(lanes, 0);
    }

    fn output(&self, real_lanes: usize) -> KernelOutput {
        KernelOutput {
            scores: self.vmax[..real_lanes].iter().map(|&v| v as i64).collect(),
            overflowed: self.vmax[..real_lanes]
                .iter()
                .map(|&v| v == i16::MAX)
                .collect(),
        }
    }
}

/// One DP step for every lane — the loop the compiler is expected to
/// vectorize (`#pragma omp simd` in the paper's Algorithm 1, line 27).
#[inline]
#[allow(clippy::too_many_arguments)]
fn lane_step(
    v_row: &[i16],
    h_col: &mut [i16],
    f_col: &mut [i16],
    h_diag: &mut [i16],
    h_up: &mut [i16],
    e_run: &mut [i16],
    vmax: &mut [i16],
    first: i16,
    extend: i16,
) {
    for lane in 0..v_row.len() {
        let h_prev = h_col[lane];
        let f = (h_prev.saturating_sub(first)).max(f_col[lane].saturating_sub(extend));
        let e = (h_up[lane].saturating_sub(first)).max(e_run[lane].saturating_sub(extend));
        let h = h_diag[lane]
            .saturating_add(v_row[lane])
            .max(e)
            .max(f)
            .max(0);
        h_diag[lane] = h_prev;
        h_col[lane] = h;
        f_col[lane] = f;
        e_run[lane] = e;
        h_up[lane] = h;
        vmax[lane] = vmax[lane].max(h);
    }
}

/// Guided kernel, query-profile flavour (`simd-QP`).
pub fn sw_guided_qp(
    qp: &QueryProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut GuidedWorkspace,
) -> KernelOutput {
    let m = qp.query_len();
    let n = batch.padded_len();
    let lanes = batch.lanes();
    let first = gap.first() as i16;
    let extend = gap.extend as i16;
    ws.reset(m, lanes);
    for j in 0..n {
        let residues = batch.row(j);
        ws.h_diag.iter_mut().for_each(|v| *v = 0);
        ws.h_up.iter_mut().for_each(|v| *v = 0);
        ws.e_run.iter_mut().for_each(|v| *v = NEG_INF_I16);
        for i in 0..m {
            let row = qp.row(i);
            // The gather: scalar indexed loads, exactly what the compiler
            // emits for `#pragma omp simd` code with indirect indexing on
            // hardware without vgather.
            for (v, &r) in ws.v_row.iter_mut().zip(residues.iter()) {
                *v = row[r as usize];
            }
            lane_step(
                &ws.v_row,
                &mut ws.h_col[i * lanes..(i + 1) * lanes],
                &mut ws.f_col[i * lanes..(i + 1) * lanes],
                &mut ws.h_diag,
                &mut ws.h_up,
                &mut ws.e_run,
                &mut ws.vmax,
                first,
                extend,
            );
        }
    }
    ws.output(batch.real_lanes())
}

/// Guided kernel, sequence-profile flavour (`simd-SP`).
pub fn sw_guided_sp(
    query: &[u8],
    sp: &SequenceProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut GuidedWorkspace,
) -> KernelOutput {
    assert_eq!(sp.lanes(), batch.lanes(), "profile/batch lane mismatch");
    assert_eq!(
        sp.padded_len(),
        batch.padded_len(),
        "profile/batch shape mismatch"
    );
    let m = query.len();
    let n = batch.padded_len();
    let lanes = batch.lanes();
    let first = gap.first() as i16;
    let extend = gap.extend as i16;
    ws.reset(m, lanes);
    for j in 0..n {
        ws.h_diag.iter_mut().for_each(|v| *v = 0);
        ws.h_up.iter_mut().for_each(|v| *v = 0);
        ws.e_run.iter_mut().for_each(|v| *v = NEG_INF_I16);
        for (i, &q) in query.iter().enumerate() {
            let v_row = sp.row(q, j);
            lane_step(
                v_row,
                &mut ws.h_col[i * lanes..(i + 1) * lanes],
                &mut ws.f_col[i * lanes..(i + 1) * lanes],
                &mut ws.h_diag,
                &mut ws.h_up,
                &mut ws.e_run,
                &mut ws.vmax,
                first,
                extend,
            );
        }
    }
    ws.output(batch.real_lanes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intertask::{sw_lanes_qp, sw_lanes_sp, Workspace};
    use crate::scalar::{sw_score_scalar, SwParams};
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;

    fn setup() -> (Alphabet, SwParams) {
        (Alphabet::protein(), SwParams::paper_default())
    }

    fn make_batch(a: &Alphabet, lanes: usize, seqs: &[Vec<u8>]) -> LaneBatch {
        let refs: Vec<(SeqId, &[u8])> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        LaneBatch::pack(lanes, &refs, pad_code(a))
    }

    #[test]
    fn guided_matches_scalar_and_intrinsic() {
        let (a, p) = setup();
        let query = a.encode_strict(b"MKVLITRAWQESTNHY").unwrap();
        let subjects: Vec<Vec<u8>> = [
            &b"MKVLITRAWQ"[..],
            &b"QWARTILVKM"[..],
            &b"AAAA"[..],
            &b"MKVITRWQESTNHYMKVITRWQ"[..],
        ]
        .iter()
        .map(|s| a.encode_strict(s).unwrap())
        .collect();
        let batch = make_batch(&a, 4, &subjects);
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let sp = SequenceProfile::build(&batch, &p.matrix, &a);

        let mut gws = GuidedWorkspace::new();
        let g_qp = sw_guided_qp(&qp, &batch, &p.gap, &mut gws);
        let g_sp = sw_guided_sp(&query, &sp, &batch, &p.gap, &mut gws);
        assert_eq!(g_qp, g_sp);

        let mut iws = Workspace::<4>::new();
        let i_qp = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut iws);
        let i_sp = sw_lanes_sp::<4>(&query, &sp, &batch, &p.gap, &mut iws);
        assert_eq!(g_qp, i_qp);
        assert_eq!(g_sp, i_sp);

        for (lane, s) in subjects.iter().enumerate() {
            assert_eq!(g_qp.scores[lane], sw_score_scalar(&query, s, &p));
        }
    }

    #[test]
    fn guided_fuzz_against_scalar() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (a, p) = setup();
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let m = rng.gen_range(1..50);
            let query: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let lanes = [1usize, 2, 4, 8, 16][rng.gen_range(0usize..5)];
            let n_seqs = rng.gen_range(1..=lanes);
            let subjects: Vec<Vec<u8>> = (0..n_seqs)
                .map(|_| {
                    let n = rng.gen_range(1..70);
                    (0..n).map(|_| rng.gen_range(0..20u8)).collect()
                })
                .collect();
            let batch = make_batch(&a, lanes, &subjects);
            let qp = QueryProfile::build(&query, &p.matrix, &a);
            let mut ws = GuidedWorkspace::new();
            let out = sw_guided_qp(&qp, &batch, &p.gap, &mut ws);
            for (lane, s) in subjects.iter().enumerate() {
                assert_eq!(out.scores[lane], sw_score_scalar(&query, s, &p));
            }
        }
    }

    #[test]
    fn guided_works_at_odd_lane_counts() {
        // Unlike the const-generic intrinsic kernel, the guided kernel is
        // width-agnostic — mirroring how compiler vectorization handles any
        // trip count.
        let (a, p) = setup();
        let query = a.encode_strict(b"MKVLIT").unwrap();
        let subjects = vec![a.encode_strict(b"MKVLIT").unwrap(); 3];
        let batch = make_batch(&a, 5, &subjects);
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let mut ws = GuidedWorkspace::new();
        let out = sw_guided_qp(&qp, &batch, &p.gap, &mut ws);
        assert_eq!(out.scores.len(), 3);
        for s in &out.scores {
            assert_eq!(*s, sw_score_scalar(&query, &query, &p));
        }
    }

    #[test]
    fn guided_saturation_flagged() {
        let (a, p) = setup();
        let long = vec![a.encode_byte(b'W').unwrap(); 3100];
        let batch = make_batch(&a, 2, std::slice::from_ref(&long));
        let qp = QueryProfile::build(&long, &p.matrix, &a);
        let mut ws = GuidedWorkspace::new();
        let out = sw_guided_qp(&qp, &batch, &p.gap, &mut ws);
        assert!(out.any_overflow());
    }
}
