//! Full-matrix Smith-Waterman with affine-gap traceback — step (4) of the
//! paper's §II description: *"a backtracking process finds the pair of
//! segments with maximum similarity."*
//!
//! Database search only needs scores (the vector kernels), but a usable
//! tool must render the best alignments; the CLI calls this on the top-k
//! hits. Memory is `O(M·N)` — fine for reporting a handful of hits,
//! deliberately not used during search.

use crate::scalar::{SwParams, NEG_INF};
use serde::{Deserialize, Serialize};

/// One step of an alignment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignOp {
    /// Query residue aligned to subject residue (match or substitution).
    Align,
    /// Gap in the subject (query residue consumed alone).
    InsertQuery,
    /// Gap in the query (subject residue consumed alone).
    InsertSubject,
}

/// A local alignment with its path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alignment {
    /// Optimal local score `G` (Eq. 6).
    pub score: i64,
    /// Query range `[start, end)` of the aligned segment (0-based).
    pub query_range: (usize, usize),
    /// Subject range `[start, end)` of the aligned segment.
    pub subject_range: (usize, usize),
    /// Path from head to tail of the alignment.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Recompute the score of this path from scratch — used by property
    /// tests to validate traceback consistency.
    pub fn recompute_score(&self, query: &[u8], subject: &[u8], params: &SwParams) -> i64 {
        let mut qi = self.query_range.0;
        let mut sj = self.subject_range.0;
        let first = params.gap.first() as i64;
        let extend = params.gap.extend as i64;
        let mut score = 0i64;
        let mut prev: Option<AlignOp> = None;
        for &op in &self.ops {
            match op {
                AlignOp::Align => {
                    score += params.matrix.score(query[qi], subject[sj]) as i64;
                    qi += 1;
                    sj += 1;
                }
                AlignOp::InsertQuery => {
                    score -= if prev == Some(AlignOp::InsertQuery) {
                        extend
                    } else {
                        first
                    };
                    qi += 1;
                }
                AlignOp::InsertSubject => {
                    score -= if prev == Some(AlignOp::InsertSubject) {
                        extend
                    } else {
                        first
                    };
                    sj += 1;
                }
            }
            prev = Some(op);
        }
        debug_assert_eq!(qi, self.query_range.1);
        debug_assert_eq!(sj, self.subject_range.1);
        score
    }

    /// Render the classic three-line alignment view (query / bars / subject)
    /// using `alphabet` for decoding.
    pub fn render(&self, query: &[u8], subject: &[u8], alphabet: &sw_seq::Alphabet) -> String {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        let mut qi = self.query_range.0;
        let mut sj = self.subject_range.0;
        for &op in &self.ops {
            match op {
                AlignOp::Align => {
                    let qc = alphabet.decode_byte(query[qi]) as char;
                    let sc = alphabet.decode_byte(subject[sj]) as char;
                    top.push(qc);
                    mid.push(if qc == sc { '|' } else { ' ' });
                    bot.push(sc);
                    qi += 1;
                    sj += 1;
                }
                AlignOp::InsertQuery => {
                    top.push(alphabet.decode_byte(query[qi]) as char);
                    mid.push(' ');
                    bot.push('-');
                    qi += 1;
                }
                AlignOp::InsertSubject => {
                    top.push('-');
                    mid.push(' ');
                    bot.push(alphabet.decode_byte(subject[sj]) as char);
                    sj += 1;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}")
    }
}

/// Summary statistics of an alignment path — the numbers BLAST-style
/// reports print per hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignStats {
    /// Alignment columns (matches + mismatches + gap positions).
    pub columns: usize,
    /// Identical residue pairs.
    pub identities: usize,
    /// Positively-scoring residue pairs (includes identities).
    pub positives: usize,
    /// Gap openings.
    pub gap_opens: usize,
    /// Total gapped columns.
    pub gap_columns: usize,
}

impl AlignStats {
    /// Percent identity over alignment columns.
    pub fn pct_identity(&self) -> f64 {
        if self.columns == 0 {
            0.0
        } else {
            100.0 * self.identities as f64 / self.columns as f64
        }
    }

    /// Percent positives over alignment columns.
    pub fn pct_positives(&self) -> f64 {
        if self.columns == 0 {
            0.0
        } else {
            100.0 * self.positives as f64 / self.columns as f64
        }
    }
}

impl Alignment {
    /// Compute per-column statistics of this alignment.
    pub fn stats(&self, query: &[u8], subject: &[u8], params: &SwParams) -> AlignStats {
        let mut qi = self.query_range.0;
        let mut sj = self.subject_range.0;
        let mut stats = AlignStats {
            columns: self.ops.len(),
            identities: 0,
            positives: 0,
            gap_opens: 0,
            gap_columns: 0,
        };
        let mut prev: Option<AlignOp> = None;
        for &op in &self.ops {
            match op {
                AlignOp::Align => {
                    if query[qi] == subject[sj] {
                        stats.identities += 1;
                    }
                    if params.matrix.score(query[qi], subject[sj]) > 0 {
                        stats.positives += 1;
                    }
                    qi += 1;
                    sj += 1;
                }
                AlignOp::InsertQuery => {
                    if prev != Some(AlignOp::InsertQuery) {
                        stats.gap_opens += 1;
                    }
                    stats.gap_columns += 1;
                    qi += 1;
                }
                AlignOp::InsertSubject => {
                    if prev != Some(AlignOp::InsertSubject) {
                        stats.gap_opens += 1;
                    }
                    stats.gap_columns += 1;
                    sj += 1;
                }
            }
            prev = Some(op);
        }
        stats
    }
}

/// DP matrix state for affine traceback.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    H,
    E,
    F,
}

/// Full Smith-Waterman alignment of one pair, with traceback.
///
/// Returns `None` when the best score is 0 (no local alignment at all).
pub fn sw_align(query: &[u8], subject: &[u8], params: &SwParams) -> Option<Alignment> {
    let m = query.len();
    let n = subject.len();
    if m == 0 || n == 0 {
        return None;
    }
    let first = params.gap.first() as i64;
    let extend = params.gap.extend as i64;
    let w = n + 1;
    // Three full matrices (H, E, F) so the affine path is exact.
    let mut h = vec![0i64; (m + 1) * w];
    let mut e = vec![NEG_INF; (m + 1) * w];
    let mut f = vec![NEG_INF; (m + 1) * w];
    let mut best = 0i64;
    let mut best_at = (0usize, 0usize);
    for i in 1..=m {
        let row = params.matrix.row(query[i - 1]);
        for j in 1..=n {
            let ix = i * w + j;
            let up = ix - w;
            let left = ix - 1;
            e[ix] = (h[up] - first).max(e[up] - extend);
            f[ix] = (h[left] - first).max(f[left] - extend);
            let diag = h[up - 1] + row[subject[j - 1] as usize] as i64;
            let v = diag.max(e[ix]).max(f[ix]).max(0);
            h[ix] = v;
            if v > best {
                best = v;
                best_at = (i, j);
            }
        }
    }
    if best == 0 {
        return None;
    }
    // Backtrack from the best cell through the three-state automaton.
    let (mut i, mut j) = best_at;
    let mut state = State::H;
    let mut ops_rev = Vec::new();
    loop {
        let ix = i * w + j;
        match state {
            State::H => {
                if h[ix] == 0 {
                    break; // head of the local alignment
                }
                if h[ix] == e[ix] {
                    state = State::E;
                } else if h[ix] == f[ix] {
                    state = State::F;
                } else {
                    ops_rev.push(AlignOp::Align);
                    i -= 1;
                    j -= 1;
                }
            }
            State::E => {
                // E[i][j] came from H[i-1][j] (open) or E[i-1][j] (extend).
                ops_rev.push(AlignOp::InsertQuery);
                let up = (i - 1) * w + j;
                state = if e[ix] == e[up] - extend {
                    State::E
                } else {
                    State::H
                };
                i -= 1;
            }
            State::F => {
                ops_rev.push(AlignOp::InsertSubject);
                let left = i * w + j - 1;
                state = if f[ix] == f[left] - extend {
                    State::F
                } else {
                    State::H
                };
                j -= 1;
            }
        }
    }
    ops_rev.reverse();
    Some(Alignment {
        score: best,
        query_range: (i, best_at.0),
        subject_range: (j, best_at.1),
        ops: ops_rev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::sw_score_scalar;
    use sw_seq::{Alphabet, GapPenalty, SubstMatrix};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    fn align(q: &[u8], d: &[u8]) -> Option<Alignment> {
        sw_align(&enc(q), &enc(d), &SwParams::paper_default())
    }

    #[test]
    fn score_matches_scalar_kernel() {
        let cases: [(&[u8], &[u8]); 5] = [
            (b"MKVLITRAW", b"MKVLITRAW"),
            (b"MKVLITRAW", b"MKRLIW"),
            (b"AAAA", b"AAGGAA"),
            (b"ARNDCQEGHILKMFPSTWYV", b"VYWTSPFMKLIHGEQCDNRA"),
            (b"WWPWW", b"WWW"),
        ];
        let p = SwParams::paper_default();
        for (q, d) in cases {
            let (qe, de) = (enc(q), enc(d));
            let expect = sw_score_scalar(&qe, &de, &p);
            let got = sw_align(&qe, &de, &p).map(|a| a.score).unwrap_or(0);
            assert_eq!(got, expect, "q={:?} d={:?}", q, d);
        }
    }

    #[test]
    fn traceback_score_is_consistent() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAWQESTNHY");
        let d = enc(b"MKVITRWWQESNHY");
        let a = sw_align(&q, &d, &p).unwrap();
        assert_eq!(a.recompute_score(&q, &d, &p), a.score);
    }

    #[test]
    fn no_alignment_returns_none() {
        assert!(align(b"W", b"P").is_none());
        assert!(align(b"", b"AAA").is_none());
    }

    #[test]
    fn perfect_alignment_is_all_matches() {
        let a = align(b"MKVLIT", b"MKVLIT").unwrap();
        assert_eq!(a.ops, vec![AlignOp::Align; 6]);
        assert_eq!(a.query_range, (0, 6));
        assert_eq!(a.subject_range, (0, 6));
    }

    #[test]
    fn embedded_motif_ranges() {
        let a = align(b"MKVLITRAW", b"PPPPMKVLITRAWPPPP").unwrap();
        assert_eq!(a.query_range, (0, 9));
        assert_eq!(a.subject_range, (4, 13));
    }

    #[test]
    fn gap_appears_with_cheap_penalties() {
        let p = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(1, 1));
        let q = enc(b"AAAA");
        let d = enc(b"AAGGAA");
        let a = sw_align(&q, &d, &p).unwrap();
        assert!(a.ops.contains(&AlignOp::InsertSubject), "ops = {:?}", a.ops);
        assert_eq!(a.recompute_score(&q, &d, &p), a.score);
    }

    #[test]
    fn render_shows_bars_for_matches() {
        let a = align(b"MKV", b"MKV").unwrap();
        let text = a.render(&enc(b"MKV"), &enc(b"MKV"), &Alphabet::protein());
        assert_eq!(text, "MKV\n|||\nMKV");
    }

    #[test]
    fn render_shows_gaps() {
        let p = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(1, 1));
        let q = enc(b"AAAA");
        let d = enc(b"AAGGAA");
        let a = sw_align(&q, &d, &p).unwrap();
        let text = a.render(&q, &d, &Alphabet::protein());
        assert!(text.contains('-'), "rendered:\n{text}");
    }

    #[test]
    fn stats_perfect_alignment() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLIT");
        let a = sw_align(&q, &q, &p).unwrap();
        let s = a.stats(&q, &q, &p);
        assert_eq!(s.columns, 6);
        assert_eq!(s.identities, 6);
        assert_eq!(s.positives, 6);
        assert_eq!(s.gap_opens, 0);
        assert_eq!(s.pct_identity(), 100.0);
    }

    #[test]
    fn stats_with_substitutions() {
        let p = SwParams::paper_default();
        // K→R is a positive substitution (BLOSUM62 K-R = 2), V→P negative.
        let q = enc(b"MKVLIT");
        let d = enc(b"MRVLIT");
        let a = sw_align(&q, &d, &p).unwrap();
        let s = a.stats(&q, &d, &p);
        assert_eq!(s.identities, 5);
        assert_eq!(s.positives, 6, "K-R scores +2: counted as positive");
        assert!((s.pct_identity() - 5.0 / 6.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn stats_count_gaps() {
        let p = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(1, 1));
        let q = enc(b"WWWW");
        let d = enc(b"WWGGWW");
        let a = sw_align(&q, &d, &p).unwrap();
        let s = a.stats(&q, &d, &p);
        assert_eq!(s.gap_opens, 1);
        assert_eq!(s.gap_columns, 2);
        assert_eq!(s.identities, 4);
        assert_eq!(s.columns, 6);
    }

    #[test]
    fn traceback_with_long_gap_run() {
        // Force a long gap (cheap extension) and validate path-score equality.
        let p = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(2, 1));
        let q = enc(b"WWWWWWWW");
        let d = enc(b"WWWWAAAAAAWWWW");
        let a = sw_align(&q, &d, &p).unwrap();
        assert_eq!(a.recompute_score(&q, &d, &p), a.score);
    }
}
