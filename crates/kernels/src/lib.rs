//! # sw-kernels — the Smith-Waterman alignment kernels
//!
//! Step (3) of the paper's pipeline: *"Perform SW alignments in parallel."*
//! This crate holds every kernel variant the paper evaluates, plus the
//! reference implementation they are verified against:
//!
//! | paper label | module | what it models |
//! |---|---|---|
//! | `no-vec` | [`scalar`] | one pair at a time, no SIMD |
//! | `simd-QP` / `simd-SP` | [`guided`] | compiler-guided vectorization (`#pragma omp simd`) |
//! | `intrinsic-QP` / `intrinsic-SP` | [`intertask`] | hand-tuned vector code over [`lanes`] |
//! | blocking on/off | [`blocked`] | the cache-blocking optimisation of Fig. 7 |
//! | Farrar striped | [`striped`] | the intra-task comparator the paper cites as [13] |
//!
//! All variants are *inter-task* (SWIPE-style, one database sequence per
//! vector lane) except [`striped`], and all must produce identical scores —
//! the cross-variant equivalence tests in this crate and in the workspace
//! `tests/` directory are the central correctness property.
//!
//! Scores are computed in saturating `i16` (the paper's vector element
//! width) with automatic detection of saturation and an exact `i64`
//! scalar rescue ([`overflow`]), so reported scores are always exact.
//!
//! Beyond the paper's variants: [`narrow`] (SWIPE-style i8→i16→i64
//! adaptive precision), [`banded`] (diagonal-band refinement), and
//! [`modes`] (global / semi-global alignment).

#![warn(missing_docs)]
#![deny(unsafe_code)] // `allow`ed only in `arch`, with SAFETY comments

pub mod arch;
pub mod banded;
pub mod blocked;
pub mod cups;
pub mod guided;
pub mod intertask;
pub mod lanes;
pub mod modes;
pub mod narrow;
pub mod overflow;
pub mod scalar;
pub mod striped;
pub mod traceback;
pub mod variant;

pub use arch::KernelIsa;
pub use cups::{CellCount, Gcups};
pub use scalar::{sw_score_scalar, SwParams};
pub use traceback::{AlignOp, Alignment};
pub use variant::{KernelVariant, ProfileMode, Vectorization};
