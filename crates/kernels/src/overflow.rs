//! Adaptive score precision — saturation detection and exact rescue.
//!
//! The vector kernels score in saturating `i16` (the element width the
//! paper's intrinsic code uses). Real protein hits can exceed 32 767 —
//! e.g. a titin self-hit scores ~200 000 — so, SWIPE-style, any lane whose
//! running maximum reaches `i16::MAX` is recomputed exactly with the
//! scalar `i64` kernel. The rescue is rare (large scores need ≥ ~3 000
//! aligned residues) and therefore cheap in aggregate, but without it
//! reported scores would silently cap.

use crate::intertask::KernelOutput;
use crate::scalar::{sw_score_scalar, SwParams};
use sw_swdb::LaneBatch;

/// Statistics of a rescue pass (exposed so engines can report how often
/// the slow path ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescueStats {
    /// Lanes recomputed exactly.
    pub lanes_rescued: u64,
    /// Extra DP cells spent in the scalar recompute.
    pub rescue_cells: u64,
}

/// Replace saturated lane scores with exact `i64` recomputations.
///
/// `lane_seqs` must yield the residues of each *real* lane in batch order
/// (typically via the original database and `batch.ids()`).
pub fn rescue_overflows(
    out: &mut KernelOutput,
    query: &[u8],
    batch: &LaneBatch,
    lane_seqs: &[&[u8]],
    params: &SwParams,
) -> RescueStats {
    assert_eq!(
        lane_seqs.len(),
        batch.real_lanes(),
        "need one sequence per real lane"
    );
    let mut stats = RescueStats::default();
    for (lane, &seq) in lane_seqs.iter().enumerate() {
        if out.overflowed[lane] {
            out.scores[lane] = sw_score_scalar(query, seq, params);
            out.overflowed[lane] = false;
            stats.lanes_rescued += 1;
            stats.rescue_cells += query.len() as u64 * seq.len() as u64;
        }
    }
    if stats.lanes_rescued > 0 {
        // Report into whichever worker journal the executor installed on
        // this thread (no-op outside a traced run): the kernel layer has
        // no tracer handle of its own.
        sw_trace::emit_current(sw_trace::EventKind::OverflowRecompute {
            from_bits: 16,
            to_bits: 64,
            lanes: stats.lanes_rescued,
        });
    }
    stats
}

/// Upper bound on the exact score of a (query, subject) pair: perfect
/// diagonal with the matrix's maximum score. Used to predict — before
/// running — whether a pair *could* overflow `i16`, letting engines route
/// enormous pairs straight to the exact kernel.
pub fn score_upper_bound(query_len: usize, subject_len: usize, max_subst: i32) -> i64 {
    query_len.min(subject_len) as i64 * max_subst as i64
}

/// True when a pair can be safely scored in i16 without any chance of
/// saturation.
pub fn fits_i16(query_len: usize, subject_len: usize, max_subst: i32) -> bool {
    score_upper_bound(query_len, subject_len, max_subst) < i16::MAX as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intertask::{sw_lanes_qp, Workspace};
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;
    use sw_swdb::QueryProfile;

    #[test]
    fn rescue_produces_exact_scores() {
        let a = Alphabet::protein();
        let p = SwParams::paper_default();
        // 3100 tryptophans self-align to 3100 × 11 = 34 100 > i16::MAX.
        let long = vec![a.encode_byte(b'W').unwrap(); 3100];
        let short = a.encode_strict(b"MKVLITRAW").unwrap();
        let batch = LaneBatch::pack(
            4,
            &[(SeqId(0), &long[..]), (SeqId(1), &short[..])],
            pad_code(&a),
        );
        let qp = QueryProfile::build(&long, &p.matrix, &a);
        let mut ws = Workspace::<4>::new();
        let mut out = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut ws);
        assert!(out.overflowed[0]);
        assert!(!out.overflowed[1]);

        let lane_seqs: Vec<&[u8]> = vec![&long, &short];
        let stats = rescue_overflows(&mut out, &long, &batch, &lane_seqs, &p);
        assert_eq!(stats.lanes_rescued, 1);
        assert_eq!(out.scores[0], 3100 * 11);
        assert!(!out.any_overflow());
        // Unaffected lane keeps its vector score.
        assert_eq!(out.scores[1], sw_score_scalar(&long, &short, &p));
    }

    #[test]
    fn rescue_noop_without_overflow() {
        let a = Alphabet::protein();
        let p = SwParams::paper_default();
        let q = a.encode_strict(b"MKVLITRAW").unwrap();
        let batch = LaneBatch::pack(2, &[(SeqId(0), &q[..])], pad_code(&a));
        let qp = QueryProfile::build(&q, &p.matrix, &a);
        let mut ws = Workspace::<2>::new();
        let mut out = sw_lanes_qp::<2>(&qp, &batch, &p.gap, &mut ws);
        let before = out.clone();
        let lane_seqs: Vec<&[u8]> = vec![&q];
        let stats = rescue_overflows(&mut out, &q, &batch, &lane_seqs, &p);
        assert_eq!(stats, RescueStats::default());
        assert_eq!(out, before);
    }

    #[test]
    fn rescue_reports_into_ambient_journal() {
        let a = Alphabet::protein();
        let p = SwParams::paper_default();
        let long = vec![a.encode_byte(b'W').unwrap(); 3100];
        let batch = LaneBatch::pack(4, &[(SeqId(0), &long[..])], pad_code(&a));
        let qp = QueryProfile::build(&long, &p.matrix, &a);
        let mut ws = Workspace::<4>::new();
        let mut out = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut ws);
        assert!(out.overflowed[0]);

        let tracer = sw_trace::Tracer::full();
        sw_trace::install(tracer.worker(0, 0));
        let lane_seqs: Vec<&[u8]> = vec![&long];
        let stats = rescue_overflows(&mut out, &long, &batch, &lane_seqs, &p);
        drop(sw_trace::uninstall());
        assert_eq!(stats.lanes_rescued, 1);
        let tl = tracer.timeline();
        assert_eq!(tl.count("overflow_recompute"), 1);
        let (_, _, ev) = tl.events_sorted()[0];
        assert!(matches!(
            ev.kind,
            sw_trace::EventKind::OverflowRecompute {
                from_bits: 16,
                to_bits: 64,
                lanes: 1
            }
        ));
    }

    #[test]
    fn upper_bound_and_fits() {
        assert_eq!(score_upper_bound(100, 50, 11), 550);
        assert!(fits_i16(100, 100, 11));
        assert!(!fits_i16(3100, 3100, 11));
        // Boundary: 2978 × 11 = 32 758 < 32 767 fits; 2979 × 11 = 32 769 does not.
        assert!(fits_i16(2978, 2978, 11));
        assert!(!fits_i16(2979, 2979, 11));
    }

    #[test]
    fn fits_i16_exact_off_by_one() {
        // With a unit matrix the bound lands exactly on i16::MAX: a bound
        // *equal* to the saturation value must not fit, because a lane at
        // i16::MAX is indistinguishable from a capped one.
        assert_eq!(score_upper_bound(32_767, 40_000, 1), i16::MAX as i64);
        assert!(!fits_i16(32_767, 40_000, 1));
        assert!(fits_i16(32_766, 40_000, 1));
    }
}
