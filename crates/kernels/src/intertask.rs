//! Inter-task vector kernels — the paper's `intrinsic-QP` and
//! `intrinsic-SP` variants.
//!
//! One lane batch = `L` database sequences aligned against the query
//! simultaneously, one per vector lane (the SWIPE scheme [Rognes 2011] the
//! paper adopts in §IV). The subject dimension `j` is the outer loop and
//! the query dimension `i` the inner one; per-column state lives in two
//! `M`-long vector arrays (`H` and `F` of the previous column) while the
//! within-column gap state (`E`, Eq. 3) and the diagonal travel in
//! registers. There is **no wavefront dependence across lanes** — that is
//! the whole point of inter-task parallelism.
//!
//! Arithmetic is saturating `i16`; a lane whose running maximum reaches
//! `i16::MAX` is flagged and later recomputed exactly (see
//! [`crate::overflow`]).

use crate::lanes::I16s;
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

/// "Minus infinity" for the i16 gap recurrences: negative enough that no
/// path recovers, far enough from `i16::MIN` that saturating subtraction
/// never wraps semantics.
pub const NEG_INF_I16: i16 = i16::MIN / 2;

/// Result of running a kernel over one lane batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOutput {
    /// Best score per **real** lane, in batch lane order.
    pub scores: Vec<i64>,
    /// Lanes whose `i16` score saturated and must be recomputed exactly.
    pub overflowed: Vec<bool>,
}

impl KernelOutput {
    fn from_vmax<const L: usize>(vmax: I16s<L>, real_lanes: usize) -> Self {
        let mut scores = Vec::with_capacity(real_lanes);
        let mut overflowed = Vec::with_capacity(real_lanes);
        for lane in 0..real_lanes {
            scores.push(vmax[lane] as i64);
            overflowed.push(vmax[lane] == i16::MAX);
        }
        KernelOutput { scores, overflowed }
    }

    /// True if any real lane saturated.
    pub fn any_overflow(&self) -> bool {
        self.overflowed.iter().any(|&o| o)
    }
}

/// Reusable per-thread scratch space so the hot loop never allocates
/// (per the perf-book guidance: allocation in the inner loop is the first
/// thing to remove).
#[derive(Debug, Default)]
pub struct Workspace<const L: usize> {
    h_col: Vec<I16s<L>>,
    f_col: Vec<I16s<L>>,
}

impl<const L: usize> Workspace<L> {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        Workspace {
            h_col: Vec::new(),
            f_col: Vec::new(),
        }
    }

    fn reset(&mut self, m: usize) {
        self.h_col.clear();
        self.h_col.resize(m, I16s::zero());
        self.f_col.clear();
        self.f_col.resize(m, I16s::splat(NEG_INF_I16));
    }
}

/// Inter-task kernel, **query-profile** flavour (`intrinsic-QP`).
///
/// Per column `j` the substitution vector for query row `i` is a *gather*
/// from QP row `i` indexed by the `L` residues of the batch at position
/// `j` — the access pattern whose hardware cost differs between Xeon
/// (no vector gather) and Phi (has gather), per the paper's §V-C analysis.
///
/// # Panics
/// Panics if `batch.lanes() != L`.
pub fn sw_lanes_qp<const L: usize>(
    qp: &QueryProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut Workspace<L>,
) -> KernelOutput {
    assert_eq!(batch.lanes(), L, "batch lane width must match kernel width");
    let m = qp.query_len();
    let n = batch.padded_len();
    let first = I16s::<L>::splat(gap.first() as i16);
    let extend = I16s::<L>::splat(gap.extend as i16);
    ws.reset(m);
    let h_col = &mut ws.h_col;
    let f_col = &mut ws.f_col;
    let mut vmax = I16s::<L>::zero();

    for j in 0..n {
        let residues = batch.row(j);
        let mut h_diag = I16s::<L>::zero(); // H[0][j-1] boundary = 0
        let mut h_up = I16s::<L>::zero(); //   H[0][j]   boundary = 0
        let mut e_run = I16s::<L>::splat(NEG_INF_I16); // E[0][j]
        for i in 0..m {
            let v = I16s::<L>::gather(qp.row(i), residues);
            let h_prev = h_col[i]; // H[i][j-1]
            let f = h_prev.sat_sub(first).max(f_col[i].sat_sub(extend)); // F[i][j]
            let e = h_up.sat_sub(first).max(e_run.sat_sub(extend)); //      E[i][j]
            let h = h_diag.sat_add(v).max(e).max(f).max_zero();
            h_diag = h_prev;
            h_col[i] = h;
            f_col[i] = f;
            e_run = e;
            h_up = h;
            vmax = vmax.max(h);
        }
    }
    KernelOutput::from_vmax(vmax, batch.real_lanes())
}

/// Inter-task kernel, **sequence-profile** flavour (`intrinsic-SP`).
///
/// The substitution vector is one contiguous load from the per-batch
/// sequence profile — the layout the paper finds fastest on both devices.
///
/// # Panics
/// Panics if `batch.lanes() != L` or the profile was built for a
/// different batch shape.
pub fn sw_lanes_sp<const L: usize>(
    query: &[u8],
    sp: &SequenceProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut Workspace<L>,
) -> KernelOutput {
    assert_eq!(batch.lanes(), L, "batch lane width must match kernel width");
    assert_eq!(sp.lanes(), L, "profile lane width must match kernel width");
    assert_eq!(
        sp.padded_len(),
        batch.padded_len(),
        "profile/batch shape mismatch"
    );
    let m = query.len();
    let n = batch.padded_len();
    let first = I16s::<L>::splat(gap.first() as i16);
    let extend = I16s::<L>::splat(gap.extend as i16);
    ws.reset(m);
    let h_col = &mut ws.h_col;
    let f_col = &mut ws.f_col;
    let mut vmax = I16s::<L>::zero();

    for j in 0..n {
        let mut h_diag = I16s::<L>::zero();
        let mut h_up = I16s::<L>::zero();
        let mut e_run = I16s::<L>::splat(NEG_INF_I16);
        for (i, &q) in query.iter().enumerate().take(m) {
            let v = I16s::<L>::load(sp.row(q, j));
            let h_prev = h_col[i];
            let f = h_prev.sat_sub(first).max(f_col[i].sat_sub(extend));
            let e = h_up.sat_sub(first).max(e_run.sat_sub(extend));
            let h = h_diag.sat_add(v).max(e).max(f).max_zero();
            h_diag = h_prev;
            h_col[i] = h;
            f_col[i] = f;
            e_run = e;
            h_up = h;
            vmax = vmax.max(h);
        }
    }
    KernelOutput::from_vmax(vmax, batch.real_lanes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{sw_score_scalar, SwParams};
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;

    fn setup() -> (Alphabet, SwParams) {
        (Alphabet::protein(), SwParams::paper_default())
    }

    fn enc(a: &Alphabet, s: &[u8]) -> Vec<u8> {
        a.encode_strict(s).unwrap()
    }

    fn make_batch<const L: usize>(a: &Alphabet, seqs: &[Vec<u8>]) -> LaneBatch {
        let refs: Vec<(SeqId, &[u8])> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        LaneBatch::pack(L, &refs, pad_code(a))
    }

    /// Both vector kernels must equal the scalar reference on every lane.
    fn check_against_scalar<const L: usize>(query_text: &[u8], subject_texts: &[&[u8]]) {
        let (a, p) = setup();
        let query = enc(&a, query_text);
        let subjects: Vec<Vec<u8>> = subject_texts.iter().map(|s| enc(&a, s)).collect();
        let batch = make_batch::<L>(&a, &subjects);
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let sp = SequenceProfile::build(&batch, &p.matrix, &a);
        let mut ws = Workspace::<L>::new();

        let out_qp = sw_lanes_qp::<L>(&qp, &batch, &p.gap, &mut ws);
        let out_sp = sw_lanes_sp::<L>(&query, &sp, &batch, &p.gap, &mut ws);
        assert_eq!(out_qp, out_sp, "QP and SP kernels must agree");

        for (lane, subject) in subjects.iter().enumerate() {
            let expect = sw_score_scalar(&query, subject, &p);
            assert_eq!(
                out_qp.scores[lane], expect,
                "lane {lane}: query {:?} vs {:?}",
                query_text, subject_texts[lane]
            );
            assert!(!out_qp.overflowed[lane]);
        }
    }

    #[test]
    fn single_lane_matches_scalar() {
        check_against_scalar::<4>(b"MKVLITRAW", &[b"MKVLITRAW"]);
    }

    #[test]
    fn full_batch_matches_scalar() {
        check_against_scalar::<4>(
            b"MKVLITRAWQ",
            &[b"MKVLITRAWQ", b"QWARTILVKM", b"AAAA", b"MKVITRWQ"],
        );
    }

    #[test]
    fn partial_batch_with_padding() {
        check_against_scalar::<8>(b"ARNDCQEGHILK", &[b"ARND", b"CQEGHILK", b"WWWWWWWWWWWW"]);
    }

    #[test]
    fn mixed_lengths_pad_correctness() {
        // Lanes of very different lengths: padding must never leak score.
        check_against_scalar::<4>(
            b"MKVLITRAWQESTNHYFPG",
            &[b"M", b"MKVLITRAWQESTNHYFPG", b"PP", b"MKVLITRAW"],
        );
    }

    #[test]
    fn zero_score_lanes() {
        // Lanes with no positive match at all must report exactly 0.
        check_against_scalar::<4>(b"WWWW", &[b"PPPP", b"GGGG", b"WWWW", b"PGPG"]);
    }

    #[test]
    fn works_at_paper_lane_widths() {
        let subjects: Vec<&[u8]> = vec![b"MKVLIT"; 16];
        check_against_scalar::<16>(b"MKVLITRAW", &subjects);
        let subjects: Vec<&[u8]> = vec![b"MKRLIW"; 32];
        check_against_scalar::<32>(b"MKVLITRAW", &subjects);
    }

    #[test]
    fn random_fuzz_against_scalar() {
        // Deterministic pseudo-random fuzz across shapes and lane widths.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (a, p) = setup();
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for round in 0..25 {
            let m = rng.gen_range(1..60);
            let query: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let n_seqs = rng.gen_range(1..=8usize);
            let subjects: Vec<Vec<u8>> = (0..n_seqs)
                .map(|_| {
                    let n = rng.gen_range(1..80);
                    (0..n).map(|_| rng.gen_range(0..20u8)).collect()
                })
                .collect();
            let batch = make_batch::<8>(&a, &subjects);
            let qp = QueryProfile::build(&query, &p.matrix, &a);
            let sp = SequenceProfile::build(&batch, &p.matrix, &a);
            let mut ws = Workspace::<8>::new();
            let out_qp = sw_lanes_qp::<8>(&qp, &batch, &p.gap, &mut ws);
            let out_sp = sw_lanes_sp::<8>(&query, &sp, &batch, &p.gap, &mut ws);
            assert_eq!(out_qp, out_sp);
            for (lane, s) in subjects.iter().enumerate() {
                assert_eq!(
                    out_qp.scores[lane],
                    sw_score_scalar(&query, s, &p),
                    "round {round} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn saturation_is_flagged() {
        // A long perfect self-match overflows i16: 11 (W-W) × 3100 ≈ 34 100.
        let (a, p) = setup();
        let long = vec![a.encode_byte(b'W').unwrap(); 3100];
        let batch = make_batch::<4>(&a, std::slice::from_ref(&long));
        let qp = QueryProfile::build(&long, &p.matrix, &a);
        let mut ws = Workspace::<4>::new();
        let out = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut ws);
        assert!(out.any_overflow(), "a 34k score must saturate i16");
        assert_eq!(out.scores[0], i16::MAX as i64);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Running a big batch then a small one must not leak state.
        let (a, p) = setup();
        let mut ws = Workspace::<4>::new();
        let big = enc(&a, b"MKVLITRAWQESTNHYFPGMKVLITRAWQESTNHYFPG");
        let batch_big = make_batch::<4>(&a, std::slice::from_ref(&big));
        let qp_big = QueryProfile::build(&big, &p.matrix, &a);
        sw_lanes_qp::<4>(&qp_big, &batch_big, &p.gap, &mut ws);

        let q = enc(&a, b"MKV");
        let s = enc(&a, b"MKV");
        let batch = make_batch::<4>(&a, std::slice::from_ref(&s));
        let qp = QueryProfile::build(&q, &p.matrix, &a);
        let out = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut ws);
        assert_eq!(out.scores[0], sw_score_scalar(&q, &s, &p));
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn lane_width_mismatch_panics() {
        let (a, p) = setup();
        let q = enc(&a, b"MKV");
        let batch = make_batch::<8>(&a, std::slice::from_ref(&q));
        let qp = QueryProfile::build(&q, &p.matrix, &a);
        let mut ws = Workspace::<4>::new();
        let _ = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut ws);
    }
}
