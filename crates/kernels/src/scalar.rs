//! Scalar reference kernels — the paper's `no-vec` baseline and this
//! workspace's ground truth.
//!
//! [`sw_score_scalar`] computes the exact Smith-Waterman similarity score
//! (Eq. 2–6 of the paper) in `i64` with linear memory. Every vector
//! variant in this crate is property-tested against it.

use sw_seq::{GapPenalty, SubstMatrix};
use sw_swdb::QueryProfile;

/// Sentinel for "minus infinity" in the gap recurrences, low enough that
/// no legal score path can recover from it but far from `i64` overflow.
pub(crate) const NEG_INF: i64 = i64::MIN / 4;

/// Scoring parameters shared by all kernels.
#[derive(Debug, Clone)]
pub struct SwParams {
    /// Substitution matrix `V`.
    pub matrix: SubstMatrix,
    /// Affine gap model `g(x) = q + r·x`.
    pub gap: GapPenalty,
}

impl SwParams {
    /// The paper's evaluation setting: BLOSUM62, gap open 10, extend 2.
    pub fn paper_default() -> Self {
        SwParams {
            matrix: SubstMatrix::blosum62(),
            gap: GapPenalty::paper_default(),
        }
    }

    /// Custom parameters.
    pub fn new(matrix: SubstMatrix, gap: GapPenalty) -> Self {
        SwParams { matrix, gap }
    }
}

/// Exact Smith-Waterman local-alignment score of one pair (Eq. 2–6).
///
/// `query` and `subject` are encoded residues. Linear memory: two `i64`
/// rows of `subject.len() + 1`.
///
/// ```
/// use sw_kernels::scalar::{sw_score_scalar, SwParams};
/// use sw_seq::Alphabet;
///
/// let a = Alphabet::protein();
/// let params = SwParams::paper_default(); // BLOSUM62, gaps 10/2
/// let q = a.encode_strict(b"MKVLITRAW").unwrap();
/// let d = a.encode_strict(b"PPPMKVLITRAWPPP").unwrap();
/// // The embedded motif aligns perfectly: sum of BLOSUM62 diagonals
/// // (M5 K5 V4 L4 I4 T5 R5 A4 W11 = 47).
/// assert_eq!(sw_score_scalar(&q, &d, &params), 47);
/// ```
pub fn sw_score_scalar(query: &[u8], subject: &[u8], params: &SwParams) -> i64 {
    let first = params.gap.first() as i64; // q + r: cost of the first gapped residue
    let extend = params.gap.extend as i64;
    let n = subject.len();
    if query.is_empty() || n == 0 {
        return 0;
    }
    // h_row[j] = H[i-1][j]; e_col[j] = E[i-1][j] (gap ending with a deletion
    // in the subject direction, Eq. 3's C).
    let mut h_row = vec![0i64; n + 1];
    let mut e_col = vec![NEG_INF; n + 1];
    let mut best = 0i64;
    for &q in query {
        let row = params.matrix.row(q);
        let mut h_diag = 0i64; // H[i-1][j-1], starts at H[i-1][0] = 0
        let mut h_left = 0i64; // H[i][j-1], starts at H[i][0] = 0
        let mut f = NEG_INF; //  F[i][j-1] recurrence carrier (Eq. 4)
        for j in 1..=n {
            let up = h_row[j]; // H[i-1][j]
            let e = (up - first).max(e_col[j] - extend); // E[i][j]
            f = (h_left - first).max(f - extend); //        F[i][j]
            let h = (h_diag + row[subject[j - 1] as usize] as i64)
                .max(e)
                .max(f)
                .max(0);
            h_diag = up;
            e_col[j] = e;
            h_row[j] = h;
            h_left = h;
            if h > best {
                best = h;
            }
        }
    }
    best
}

/// Scalar score via a prebuilt [`QueryProfile`] — the `no-vec + QP`
/// configuration of the paper's Fig. 3. Must agree with
/// [`sw_score_scalar`] exactly (the profile is just a different layout of
/// the same matrix).
pub fn sw_score_scalar_qp(qp: &QueryProfile, subject: &[u8], gap: &GapPenalty) -> i64 {
    let first = gap.first() as i64;
    let extend = gap.extend as i64;
    let m = qp.query_len();
    let n = subject.len();
    if m == 0 || n == 0 {
        return 0;
    }
    let mut h_row = vec![0i64; n + 1];
    let mut e_col = vec![NEG_INF; n + 1];
    let mut best = 0i64;
    for i in 0..m {
        let row = qp.row(i);
        let mut h_diag = 0i64;
        let mut h_left = 0i64;
        let mut f = NEG_INF;
        for j in 1..=n {
            let up = h_row[j];
            let e = (up - first).max(e_col[j] - extend);
            f = (h_left - first).max(f - extend);
            let h = (h_diag + row[subject[j - 1] as usize] as i64)
                .max(e)
                .max(f)
                .max(0);
            h_diag = up;
            e_col[j] = e;
            h_row[j] = h;
            h_left = h;
            if h > best {
                best = h;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::Alphabet;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    fn score(q: &[u8], d: &[u8]) -> i64 {
        sw_score_scalar(&enc(q), &enc(d), &SwParams::paper_default())
    }

    #[test]
    fn empty_inputs_score_zero() {
        assert_eq!(score(b"", b"ARND"), 0);
        assert_eq!(score(b"ARND", b""), 0);
        assert_eq!(score(b"", b""), 0);
    }

    #[test]
    fn single_match() {
        // One aligned pair: score = V(a, a) = 4 for 'A'.
        assert_eq!(score(b"A", b"A"), 4);
        assert_eq!(score(b"W", b"W"), 11);
    }

    #[test]
    fn single_mismatch_clamps_to_zero() {
        // V(A, W) = -3 < 0, local alignment refuses: score 0.
        assert_eq!(score(b"A", b"W"), 0);
    }

    #[test]
    fn self_alignment_is_sum_of_diagonal() {
        // Perfect self-alignment with no gaps: sum of V(x, x).
        let m = SubstMatrix::blosum62();
        let a = Alphabet::protein();
        let text = b"MKVLITRAWQ";
        let expect: i64 = text
            .iter()
            .map(|&c| m.score(a.encode_byte(c).unwrap(), a.encode_byte(c).unwrap()) as i64)
            .sum();
        assert_eq!(score(text, text), expect);
    }

    #[test]
    fn known_gapped_alignment() {
        // Query AAAA vs subject AA|AA with 2 residues inserted in subject:
        // AAAA vs AAGGAA. Best local alignment either takes 4 matches with
        // a 2-gap (4*4 - (10+2*2)=2) or just 2 matches (8). It must choose 8.
        assert_eq!(score(b"AAAA", b"AAGGAA"), 8);
        // With cheap gaps (open 1 extend 1), gapped path wins: 16 - (1+2) = 13.
        let p = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(1, 1));
        assert_eq!(sw_score_scalar(&enc(b"AAAA"), &enc(b"AAGGAA"), &p), 13);
    }

    #[test]
    fn symmetry_for_symmetric_matrix() {
        let pairs: [(&[u8], &[u8]); 3] = [
            (b"MKVLIT", b"MKRLIT"),
            (b"AAAA", b"WWWW"),
            (b"ARNDCQE", b"CQEARND"),
        ];
        for (a, b) in pairs {
            assert_eq!(score(a, b), score(b, a), "SW must be symmetric");
        }
    }

    #[test]
    fn score_never_negative() {
        assert_eq!(score(b"W", b"P"), 0);
        assert_eq!(score(b"WWWW", b"PPPP"), 0);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        // The motif scores the same wherever it is embedded.
        let motif = b"MKVLITRAW";
        let embedded = b"PPPPPPMKVLITRAWPPPPPP";
        assert_eq!(score(motif, embedded), score(motif, motif));
    }

    #[test]
    fn concatenation_never_decreases_score() {
        // Adding residues to the subject can only add candidate alignments.
        let q = b"MKVLIT";
        let s1 = score(q, b"MKRLIT");
        let s2 = score(q, b"MKRLITAAAA");
        assert!(s2 >= s1);
    }

    #[test]
    fn qp_variant_agrees_with_direct() {
        let a = Alphabet::protein();
        let params = SwParams::paper_default();
        let q = enc(b"MKVLITRAWQPSTNE");
        let subjects: [&[u8]; 4] = [b"MKVLITRAW", b"QQQQQ", b"MKVLITRAWMKVLITRAWMKVLITRAW", b"A"];
        let qp = QueryProfile::build(&q, &params.matrix, &a);
        for s in subjects {
            let d = enc(s);
            assert_eq!(
                sw_score_scalar_qp(&qp, &d, &params.gap),
                sw_score_scalar(&q, &d, &params),
            );
        }
    }

    #[test]
    fn gap_open_vs_extend_tradeoff() {
        // A single long gap must be preferred over two short gaps when the
        // open penalty dominates: query matches subject with 2 separated
        // insertions vs 2 adjacent ones.
        let p_cheap_ext = SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(10, 1));
        // WWWWWW vs WWW PP WWW (one gap of 2) vs WW P WW P WW (two gaps of 1).
        // W-vs-P scores -4, so the ungapped diagonal cannot compete and the
        // gap structure decides: 66-(10+2)=54 vs 66-2*(10+1)=44.
        let q = enc(b"WWWWWW");
        let one_gap = enc(b"WWWPPWWW");
        let two_gaps = enc(b"WWPWWPWW");
        let s1 = sw_score_scalar(&q, &one_gap, &p_cheap_ext);
        let s2 = sw_score_scalar(&q, &two_gaps, &p_cheap_ext);
        assert!(s1 > s2, "one long gap ({s1}) must beat two gaps ({s2})");
    }
}
