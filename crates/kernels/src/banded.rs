//! Banded Smith-Waterman — score-only alignment restricted to a diagonal
//! band.
//!
//! When a candidate's alignment diagonal is already known (e.g. from a
//! seed-and-extend HSP), restricting the DP to `|j − i − c| ≤ r` computes
//! the same score at `O(M·r)` instead of `O(M·N)` cost — the classic
//! refinement accelerator BLAST-family tools use. With a band radius
//! covering the whole matrix the result equals full Smith-Waterman
//! (property-tested); narrower bands give a lower bound that grows
//! monotonically with the radius.

use crate::scalar::{SwParams, NEG_INF};

/// Banded local-alignment score.
///
/// Cells with `|j − i − center_diag| > band_radius` are unreachable
/// (paths may not leave the band). `center_diag` is the subject-minus-
/// query offset of the band centre (0 = main diagonal).
pub fn sw_banded(
    query: &[u8],
    subject: &[u8],
    params: &SwParams,
    center_diag: i64,
    band_radius: usize,
) -> i64 {
    let m = query.len();
    let n = subject.len();
    if m == 0 || n == 0 {
        return 0;
    }
    let first = params.gap.first() as i64;
    let extend = params.gap.extend as i64;
    let r = band_radius as i64;

    // Row arrays over the full subject width; out-of-band cells hold
    // NEG_INF so transitions from them never win. H[0][j] boundary: only
    // positions inside the band at i=0..1 matter; a local alignment can
    // start anywhere inside the band, so in-band boundary cells are 0.
    let in_band = |i: i64, j: i64| -> bool { (j - i - center_diag).abs() <= r };
    let mut h_row = vec![NEG_INF; n + 1];
    let mut e_col = vec![NEG_INF; n + 1];
    for (j, h) in h_row.iter_mut().enumerate() {
        if in_band(0, j as i64) {
            *h = 0;
        }
    }
    let mut best = 0i64;
    for i in 1..=m {
        let row = params.matrix.row(query[i - 1]);
        let lo = (i as i64 + center_diag - r).max(1);
        let hi = (i as i64 + center_diag + r).min(n as i64);
        if lo > hi {
            // The band has left the matrix for this row (query much longer
            // than the subject, or an extreme centre offset).
            continue;
        }
        // H[i][lo-1] boundary: inside the band it is a valid local start.
        let mut h_diag = if in_band(i as i64 - 1, lo - 1) {
            h_row[(lo - 1) as usize]
        } else {
            NEG_INF
        };
        let mut h_left = if in_band(i as i64, lo - 1) {
            0
        } else {
            NEG_INF
        };
        let mut f = NEG_INF;
        // Cells before lo are out of band for this row.
        if lo > 1 {
            h_row[(lo - 1) as usize] = NEG_INF;
        }
        for j in lo..=hi {
            let ju = j as usize;
            let up = h_row[ju];
            let e = (up - first).max(e_col[ju] - extend);
            f = (h_left - first).max(f - extend);
            let h = (h_diag.max(0) + row[subject[ju - 1] as usize] as i64)
                .max(e)
                .max(f)
                .max(0);
            // h_diag.max(0): an in-band boundary-adjacent start is free; a
            // NEG_INF diag (out of band) must stay unreachable, which the
            // subsequent max(0) would break — so only lift genuine 0s.
            let h = if h_diag <= NEG_INF / 2 && e <= NEG_INF / 2 && f <= NEG_INF / 2 {
                // No in-band predecessor at all: fresh local start.
                (row[subject[ju - 1] as usize] as i64).max(0)
            } else {
                h
            };
            h_diag = up;
            e_col[ju] = e;
            h_row[ju] = h;
            h_left = h;
            if h > best {
                best = h;
            }
        }
        // Invalidate the cell just past the band so the next row's E
        // recurrence can't read a stale value.
        if (hi as usize) < n {
            h_row[hi as usize + 1] = NEG_INF;
            e_col[hi as usize + 1] = NEG_INF;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::sw_score_scalar;
    use sw_seq::Alphabet;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    #[test]
    fn full_band_equals_exact() {
        let p = SwParams::paper_default();
        let cases: [(&[u8], &[u8]); 4] = [
            (b"MKVLITRAW", b"MKVLITRAW"),
            (b"MKVLITRAW", b"MKRLIW"),
            (b"AAAA", b"AAGGAA"),
            (b"WWPWW", b"WWW"),
        ];
        for (q, s) in cases {
            let (qe, se) = (enc(q), enc(s));
            let band = qe.len().max(se.len());
            assert_eq!(
                sw_banded(&qe, &se, &p, 0, band),
                sw_score_scalar(&qe, &se, &p),
                "q={q:?} s={s:?}"
            );
        }
    }

    #[test]
    fn band_monotone_in_radius() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAWQESTNHYFPGD");
        let s = enc(b"MKVITRAWQQESTNHYFPGD");
        let mut last = 0;
        for r in [0usize, 1, 2, 4, 8, 16, 32] {
            let score = sw_banded(&q, &s, &p, 0, r);
            assert!(score >= last, "radius {r}: {score} < {last}");
            last = score;
        }
        assert_eq!(last, sw_score_scalar(&q, &s, &p));
    }

    #[test]
    fn off_center_band_finds_shifted_alignment() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAW");
        // Alignment sits at diagonal +6 (subject has a 6-residue prefix).
        let s = enc(b"PPPPPPMKVLITRAW");
        let exact = sw_score_scalar(&q, &s, &p);
        // A tight band on the wrong diagonal misses it...
        assert!(sw_banded(&q, &s, &p, 0, 2) < exact);
        // ...the right diagonal nails it even with radius 0.
        assert_eq!(sw_banded(&q, &s, &p, 6, 0), exact);
    }

    #[test]
    fn zero_radius_is_single_diagonal() {
        let p = SwParams::paper_default();
        let q = enc(b"WWWW");
        let s = enc(b"WWWW");
        // Radius 0 on the main diagonal: ungapped self-alignment.
        assert_eq!(sw_banded(&q, &s, &p, 0, 0), 44);
    }

    #[test]
    fn banded_fuzz_against_scalar_with_wide_band() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let p = SwParams::paper_default();
        let mut rng = SmallRng::seed_from_u64(0xBA4D);
        for _ in 0..40 {
            let m = rng.gen_range(1..50);
            let n = rng.gen_range(1..50);
            let q: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(0..20u8)).collect();
            let got = sw_banded(&q, &s, &p, 0, m.max(n));
            assert_eq!(got, sw_score_scalar(&q, &s, &p));
        }
    }

    #[test]
    fn band_leaving_the_matrix_is_safe() {
        // Query much longer than the subject: the band exits the matrix on
        // the right; rows past that point must be skipped, not indexed.
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAWQESTNHYFPGDMKVLITRAWQESTNHYFPGD"); // 40
        let d = enc(b"MKVLITRAW"); // 9
        for r in [0usize, 2, 8] {
            let got = sw_banded(&q, &d, &p, 0, r);
            assert!(got >= 0);
            assert!(got <= sw_score_scalar(&q, &d, &p));
        }
        // Wide band still exact.
        assert_eq!(sw_banded(&q, &d, &p, 0, 64), sw_score_scalar(&q, &d, &p));
        // Extreme centre offsets in both directions are clean too.
        assert_eq!(sw_banded(&q, &d, &p, 1000, 3), 0);
        assert_eq!(sw_banded(&q, &d, &p, -1000, 3), 0);
    }

    #[test]
    fn empty_inputs() {
        let p = SwParams::paper_default();
        assert_eq!(sw_banded(&[], &enc(b"AA"), &p, 0, 5), 0);
        assert_eq!(sw_banded(&enc(b"AA"), &[], &p, 0, 5), 0);
    }
}
