//! Kernel variant taxonomy — the labels of the paper's figures.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Vectorization tier (§V-B: `no-vec`, `simd`, `intrinsic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vectorization {
    /// Scalar baseline, no SIMD exploitation.
    NoVec,
    /// Compiler-guided vectorization (`#pragma omp simd` in the paper).
    Guided,
    /// Hand-tuned vector code (intrinsics in the paper).
    Intrinsic,
}

/// Substitution-score layout (§IV: query profile vs sequence profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileMode {
    /// Query profile: per-query `|Q| × |Σ|` table, gathered per column.
    Query,
    /// Sequence profile: per-batch `|Σ| × N × L` table, loaded contiguously.
    Sequence,
}

/// A complete kernel configuration, as plotted in Figs. 3–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelVariant {
    /// Vectorization tier.
    pub vec: Vectorization,
    /// Profile layout.
    pub profile: ProfileMode,
    /// Cache blocking on/off (Fig. 7).
    pub blocking: bool,
}

impl KernelVariant {
    /// The paper's best configuration: intrinsic + SP + blocking.
    pub fn best() -> Self {
        KernelVariant {
            vec: Vectorization::Intrinsic,
            profile: ProfileMode::Sequence,
            blocking: true,
        }
    }

    /// All six vectorization × profile combinations of Fig. 3/5 (with
    /// blocking enabled, as the paper's main results use).
    pub fn fig3_set() -> Vec<Self> {
        let mut v = Vec::with_capacity(6);
        for vec in [
            Vectorization::NoVec,
            Vectorization::Guided,
            Vectorization::Intrinsic,
        ] {
            for profile in [ProfileMode::Query, ProfileMode::Sequence] {
                v.push(KernelVariant {
                    vec,
                    profile,
                    blocking: true,
                });
            }
        }
        v
    }

    /// Paper-style label, e.g. `intrinsic-SP`.
    pub fn label(&self) -> String {
        let vec = match self.vec {
            Vectorization::NoVec => "no-vec",
            Vectorization::Guided => "simd",
            Vectorization::Intrinsic => "intrinsic",
        };
        let prof = match self.profile {
            ProfileMode::Query => "QP",
            ProfileMode::Sequence => "SP",
        };
        if self.blocking {
            format!("{vec}-{prof}")
        } else {
            format!("{vec}-{prof}-noblock")
        }
    }
}

impl fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(KernelVariant::best().label(), "intrinsic-SP");
        let v = KernelVariant {
            vec: Vectorization::Guided,
            profile: ProfileMode::Query,
            blocking: true,
        };
        assert_eq!(v.label(), "simd-QP");
        let nb = KernelVariant {
            blocking: false,
            ..v
        };
        assert_eq!(nb.label(), "simd-QP-noblock");
    }

    #[test]
    fn fig3_set_is_six_unique_variants() {
        let set = KernelVariant::fig3_set();
        assert_eq!(set.len(), 6);
        let mut labels: Vec<String> = set.iter().map(KernelVariant::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn display_is_label() {
        assert_eq!(KernelVariant::best().to_string(), "intrinsic-SP");
    }
}
