//! GCUPS accounting — the paper's performance metric.
//!
//! §V-C: *"performance results are expressed in GCUPS"* — giga cell
//! updates per second, `M × N / t / 10⁹` summed over all alignments. Only
//! **real** cells count (padding is wasted work, not throughput).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A GCUPS measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gcups(pub f64);

impl Gcups {
    /// From a cell count and elapsed wall-clock time. A zero elapsed time
    /// (an empty device share, a search over zero batches) reports zero
    /// throughput rather than panicking — no work happened in no time.
    pub fn from_cells(cells: u64, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return Gcups(0.0);
        }
        Gcups(cells as f64 / secs / 1e9)
    }

    /// From a cell count and elapsed seconds (simulated time). Mirrors
    /// [`Gcups::from_cells`]: a non-positive elapsed time reports zero
    /// throughput instead of panicking, so a zero-length simulated device
    /// share in `desim` can't abort a run.
    pub fn from_cells_secs(cells: u64, secs: f64) -> Self {
        if secs <= 0.0 {
            return Gcups(0.0);
        }
        Gcups(cells as f64 / secs / 1e9)
    }

    /// Raw value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Gcups {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GCUPS", self.0)
    }
}

/// Running tally of DP cells, split into the real cells GCUPS counts and
/// the padded cells time is spent on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCount {
    /// Cells over real residues (the numerator of GCUPS).
    pub real: u64,
    /// Cells actually computed, including lane padding.
    pub padded: u64,
}

impl CellCount {
    /// Add another tally.
    pub fn add(&mut self, other: CellCount) {
        self.real += other.real;
        self.padded += other.padded;
    }

    /// Padding overhead ratio (`padded / real`, 1.0 = no waste). An empty
    /// tally is 1.0; a tally that is *all* padding has no real work to
    /// amortise it and reports infinite overhead, not perfect efficiency.
    pub fn overhead(&self) -> f64 {
        match (self.real, self.padded) {
            (0, 0) => 1.0,
            (0, _) => f64::INFINITY,
            _ => self.padded as f64 / self.real as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_from_cells() {
        let g = Gcups::from_cells_secs(30_400_000_000, 1.0);
        assert!((g.value() - 30.4).abs() < 1e-9);
        assert_eq!(g.to_string(), "30.4 GCUPS");
    }

    #[test]
    fn gcups_from_duration() {
        let g = Gcups::from_cells(2_000_000_000, Duration::from_millis(500));
        assert!((g.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_simulated_time_reports_zero_throughput() {
        // Must match `from_cells(…, Duration::ZERO)` — zero, not a panic.
        assert_eq!(Gcups::from_cells_secs(1, 0.0).value(), 0.0);
        assert_eq!(Gcups::from_cells_secs(1, -1.0).value(), 0.0);
    }

    #[test]
    fn zero_duration_reports_zero_throughput() {
        // An empty device share has elapsed == ZERO; that is zero
        // throughput, not an error (regression for the old 1 ns sentinel).
        let g = Gcups::from_cells(1_000_000, Duration::ZERO);
        assert_eq!(g.value(), 0.0);
        assert_eq!(Gcups::from_cells(0, Duration::ZERO).value(), 0.0);
    }

    #[test]
    fn cell_count_math() {
        let mut c = CellCount {
            real: 80,
            padded: 100,
        };
        c.add(CellCount {
            real: 20,
            padded: 20,
        });
        assert_eq!(c.real, 100);
        assert_eq!(c.padded, 120);
        assert!((c.overhead() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_cell_count_overhead_is_one() {
        assert_eq!(CellCount::default().overhead(), 1.0);
    }

    #[test]
    fn all_padding_overhead_is_infinite() {
        // real == 0 with padded > 0 is pure waste, not "no waste".
        let c = CellCount { real: 0, padded: 7 };
        assert!(c.overhead().is_infinite());
    }
}
