//! Narrow-precision (i8) inter-task kernels — the first tier of SWIPE's
//! dual-precision cascade.
//!
//! SWIPE [Rognes 2011] scores every pair in saturating bytes first
//! (double the lanes of the 16-bit kernel on real SIMD hardware) and
//! recomputes the rare saturating pairs at higher precision. Most random
//! database pairs score far below 127, so the narrow pass does almost all
//! the work. This module provides the i8 kernels and
//! [`sw_adaptive_sp`] / [`sw_adaptive_qp`], the full i8 → i16 → i64
//! cascade with exact results.
//!
//! The cascade is exact because saturation is *detected*, never silent:
//! an i8 lane that touches `i8::MAX` is recomputed in i16; an i16 lane
//! that touches `i16::MAX` is recomputed by the caller in i64 (see
//! [`crate::overflow`]).

use crate::intertask::{sw_lanes_qp, sw_lanes_sp, KernelOutput, Workspace};
use crate::lanes::I8s;
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, QueryProfileI8, SequenceProfile, SequenceProfileI8};

/// i8 "minus infinity" — low enough that no path recovers, far enough
/// from `i8::MIN` to keep saturating subtraction semantics clean.
pub const NEG_INF_I8: i8 = i8::MIN / 2;

/// Scratch for the i8 kernels.
#[derive(Debug, Default)]
pub struct NarrowWorkspace<const L: usize> {
    h_col: Vec<I8s<L>>,
    f_col: Vec<I8s<L>>,
}

impl<const L: usize> NarrowWorkspace<L> {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        NarrowWorkspace {
            h_col: Vec::new(),
            f_col: Vec::new(),
        }
    }

    fn reset(&mut self, m: usize) {
        self.h_col.clear();
        self.h_col.resize(m, I8s::zero());
        self.f_col.clear();
        self.f_col.resize(m, I8s::splat(NEG_INF_I8));
    }
}

/// Output of a narrow pass: per-lane scores plus saturation flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NarrowOutput {
    /// Best score per real lane (exact only where `!saturated`).
    pub scores: Vec<i64>,
    /// Lanes that touched `i8::MAX` and need the wide kernel.
    pub saturated: Vec<bool>,
}

impl NarrowOutput {
    fn from_vmax<const L: usize>(vmax: I8s<L>, real_lanes: usize) -> Self {
        let mut scores = Vec::with_capacity(real_lanes);
        let mut saturated = Vec::with_capacity(real_lanes);
        for lane in 0..real_lanes {
            scores.push(vmax.0[lane] as i64);
            saturated.push(vmax.0[lane] == i8::MAX);
        }
        NarrowOutput { scores, saturated }
    }

    /// True if any real lane saturated.
    pub fn any_saturated(&self) -> bool {
        self.saturated.iter().any(|&s| s)
    }
}

/// i8 inter-task kernel, sequence-profile flavour.
///
/// # Panics
/// Panics on lane-width or shape mismatches.
pub fn sw_narrow_sp<const L: usize>(
    query: &[u8],
    sp: &SequenceProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut NarrowWorkspace<L>,
) -> NarrowOutput {
    assert_eq!(batch.lanes(), L, "batch lane width must match kernel width");
    assert_eq!(sp.lanes(), L, "profile lane width must match kernel width");
    assert_eq!(
        sp.padded_len(),
        batch.padded_len(),
        "profile/batch shape mismatch"
    );
    let m = query.len();
    let n = batch.padded_len();
    let first = I8s::<L>::splat(gap.first().clamp(0, 127) as i8);
    let extend = I8s::<L>::splat(gap.extend.clamp(0, 127) as i8);
    ws.reset(m);
    let mut vmax = I8s::<L>::zero();
    for j in 0..n {
        let mut h_diag = I8s::<L>::zero();
        let mut h_up = I8s::<L>::zero();
        let mut e_run = I8s::<L>::splat(NEG_INF_I8);
        for (i, &q) in query.iter().enumerate() {
            let v = I8s::<L>::load(sp.row(q, j));
            let h_prev = ws.h_col[i];
            let f = h_prev.sat_sub(first).max(ws.f_col[i].sat_sub(extend));
            let e = h_up.sat_sub(first).max(e_run.sat_sub(extend));
            let h = h_diag.sat_add(v).max(e).max(f).max_zero();
            h_diag = h_prev;
            ws.h_col[i] = h;
            ws.f_col[i] = f;
            e_run = e;
            h_up = h;
            vmax = vmax.max(h);
        }
    }
    NarrowOutput::from_vmax(vmax, batch.real_lanes())
}

/// i8 inter-task kernel, query-profile flavour.
pub fn sw_narrow_qp<const L: usize>(
    qp: &QueryProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws: &mut NarrowWorkspace<L>,
) -> NarrowOutput {
    assert_eq!(batch.lanes(), L, "batch lane width must match kernel width");
    let m = qp.query_len();
    let n = batch.padded_len();
    let first = I8s::<L>::splat(gap.first().clamp(0, 127) as i8);
    let extend = I8s::<L>::splat(gap.extend.clamp(0, 127) as i8);
    ws.reset(m);
    let mut vmax = I8s::<L>::zero();
    for j in 0..n {
        let residues = batch.row(j);
        let mut h_diag = I8s::<L>::zero();
        let mut h_up = I8s::<L>::zero();
        let mut e_run = I8s::<L>::splat(NEG_INF_I8);
        for i in 0..m {
            let v = I8s::<L>::gather(qp.row(i), residues);
            let h_prev = ws.h_col[i];
            let f = h_prev.sat_sub(first).max(ws.f_col[i].sat_sub(extend));
            let e = h_up.sat_sub(first).max(e_run.sat_sub(extend));
            let h = h_diag.sat_add(v).max(e).max(f).max_zero();
            h_diag = h_prev;
            ws.h_col[i] = h;
            ws.f_col[i] = f;
            e_run = e;
            h_up = h;
            vmax = vmax.max(h);
        }
    }
    NarrowOutput::from_vmax(vmax, batch.real_lanes())
}

/// Statistics of one adaptive run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Lanes settled by the i8 pass.
    pub settled_i8: u64,
    /// Lanes that needed the i16 pass.
    pub widened_i16: u64,
}

/// Dual-precision cascade, SP flavour: i8 pass for the whole batch, i16
/// re-pass only if any lane saturated. Lanes that also saturate i16 are
/// flagged in the returned [`KernelOutput`] for the caller's i64 rescue.
pub fn sw_adaptive_sp<const L: usize>(
    query: &[u8],
    sp: &SequenceProfile,
    sp8: &SequenceProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws8: &mut NarrowWorkspace<L>,
    ws16: &mut Workspace<L>,
) -> (KernelOutput, CascadeStats) {
    let narrow = sw_narrow_sp::<L>(query, sp8, batch, gap, ws8);
    cascade(narrow, || sw_lanes_sp::<L>(query, sp, batch, gap, ws16))
}

/// Dual-precision cascade, QP flavour.
pub fn sw_adaptive_qp<const L: usize>(
    qp: &QueryProfile,
    qp8: &QueryProfileI8,
    batch: &LaneBatch,
    gap: &GapPenalty,
    ws8: &mut NarrowWorkspace<L>,
    ws16: &mut Workspace<L>,
) -> (KernelOutput, CascadeStats) {
    let narrow = sw_narrow_qp::<L>(qp8, batch, gap, ws8);
    cascade(narrow, || sw_lanes_qp::<L>(qp, batch, gap, ws16))
}

pub(crate) fn cascade(
    narrow: NarrowOutput,
    wide: impl FnOnce() -> KernelOutput,
) -> (KernelOutput, CascadeStats) {
    let real = narrow.scores.len() as u64;
    if !narrow.any_saturated() {
        let out = KernelOutput {
            overflowed: vec![false; narrow.scores.len()],
            scores: narrow.scores,
        };
        return (
            out,
            CascadeStats {
                settled_i8: real,
                widened_i16: 0,
            },
        );
    }
    // At least one lane needs i16; rerun the batch wide (lanes are
    // computed together anyway) and keep the wide scores for saturated
    // lanes only — the narrow scores are already exact elsewhere and the
    // two must agree, which debug builds assert.
    let wide_out = wide();
    let mut scores = narrow.scores;
    let mut overflowed = vec![false; scores.len()];
    let mut widened = 0u64;
    for lane in 0..scores.len() {
        if narrow.saturated[lane] {
            scores[lane] = wide_out.scores[lane];
            overflowed[lane] = wide_out.overflowed[lane];
            widened += 1;
        } else {
            debug_assert_eq!(
                scores[lane], wide_out.scores[lane],
                "unsaturated narrow score must already be exact"
            );
        }
    }
    (
        KernelOutput { scores, overflowed },
        CascadeStats {
            settled_i8: real - widened,
            widened_i16: widened,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{sw_score_scalar, SwParams};
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;

    fn setup() -> (Alphabet, SwParams) {
        (Alphabet::protein(), SwParams::paper_default())
    }

    fn make_batch<const L: usize>(a: &Alphabet, seqs: &[Vec<u8>]) -> LaneBatch {
        let refs: Vec<(SeqId, &[u8])> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        LaneBatch::pack(L, &refs, pad_code(a))
    }

    fn profiles(
        a: &Alphabet,
        p: &SwParams,
        query: &[u8],
        batch: &LaneBatch,
    ) -> (
        QueryProfile,
        QueryProfileI8,
        SequenceProfile,
        SequenceProfileI8,
    ) {
        let qp = QueryProfile::build(query, &p.matrix, a);
        let sp = SequenceProfile::build(batch, &p.matrix, a);
        let qp8 = QueryProfileI8::from_wide(&qp);
        let sp8 = SequenceProfileI8::from_wide(&sp);
        (qp, qp8, sp, sp8)
    }

    #[test]
    fn narrow_exact_below_saturation() {
        let (a, p) = setup();
        let query = a.encode_strict(b"MKVLITRAW").unwrap();
        let subjects: Vec<Vec<u8>> = [&b"MKVLITRAW"[..], &b"QQQQ"[..], &b"WARTILVKM"[..]]
            .iter()
            .map(|s| a.encode_strict(s).unwrap())
            .collect();
        let batch = make_batch::<4>(&a, &subjects);
        let (_, qp8, _, sp8) = profiles(&a, &p, &query, &batch);
        let mut ws = NarrowWorkspace::<4>::new();
        let o_sp = sw_narrow_sp::<4>(&query, &sp8, &batch, &p.gap, &mut ws);
        let o_qp = sw_narrow_qp::<4>(&qp8, &batch, &p.gap, &mut ws);
        assert_eq!(o_sp, o_qp);
        assert!(!o_sp.any_saturated());
        for (lane, s) in subjects.iter().enumerate() {
            assert_eq!(
                o_sp.scores[lane],
                sw_score_scalar(&query, s, &p),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn narrow_saturates_on_scores_over_127() {
        // 12 tryptophans self-align to 132 > 127.
        let (a, p) = setup();
        let w = a.encode_byte(b'W').unwrap();
        let long = vec![w; 12];
        let batch = make_batch::<2>(&a, std::slice::from_ref(&long));
        let (_, _, _, sp8) = profiles(&a, &p, &long, &batch);
        let mut ws = NarrowWorkspace::<2>::new();
        let o = sw_narrow_sp::<2>(&long, &sp8, &batch, &p.gap, &mut ws);
        assert!(o.any_saturated());
        assert_eq!(o.scores[0], 127);
    }

    #[test]
    fn adaptive_cascade_is_exact() {
        // Mix of lanes: some settle in i8, one needs i16, one would even
        // need i64 (flagged as overflowed).
        let (a, p) = setup();
        let w = a.encode_byte(b'W').unwrap();
        let small = a.encode_strict(b"MKVLITRAW").unwrap();
        let medium = vec![w; 50]; //   50·11 = 550 (needs i16)
        let giant = vec![w; 3200]; // 3200·11 = 35 200 (needs i64)
        let query = vec![w; 3200];
        let batch = make_batch::<4>(&a, &[small.clone(), medium.clone(), giant.clone()]);
        let (_, _, sp, sp8) = profiles(&a, &p, &query, &batch);
        let mut ws8 = NarrowWorkspace::<4>::new();
        let mut ws16 = Workspace::<4>::new();
        let (out, stats) =
            sw_adaptive_sp::<4>(&query, &sp, &sp8, &batch, &p.gap, &mut ws8, &mut ws16);
        assert_eq!(stats.widened_i16, 2, "medium and giant lanes widen");
        assert_eq!(stats.settled_i8, 1);
        assert_eq!(out.scores[1], 550);
        assert!(out.overflowed[2], "giant lane still needs the i64 rescue");
        assert!(!out.overflowed[0] && !out.overflowed[1]);
        // Lane 0 (small) kept its narrow score, which is exact.
        assert_eq!(out.scores[0], sw_score_scalar(&query, &small, &p));
    }

    #[test]
    fn adaptive_qp_matches_sp() {
        let (a, p) = setup();
        let w = a.encode_byte(b'W').unwrap();
        let query = vec![w; 40];
        let subjects = vec![a.encode_strict(b"MKVLITRAW").unwrap(), vec![w; 40]];
        let batch = make_batch::<2>(&a, &subjects);
        let (qp, qp8, sp, sp8) = profiles(&a, &p, &query, &batch);
        let mut ws8 = NarrowWorkspace::<2>::new();
        let mut ws16 = Workspace::<2>::new();
        let (o1, s1) = sw_adaptive_sp::<2>(&query, &sp, &sp8, &batch, &p.gap, &mut ws8, &mut ws16);
        let (o2, s2) = sw_adaptive_qp::<2>(&qp, &qp8, &batch, &p.gap, &mut ws8, &mut ws16);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert_eq!(o1.scores[1], 40 * 11);
    }

    #[test]
    fn cascade_exact_at_i8_max_boundary() {
        // BLOSUM62 self-scores: W=11, G=6. Eleven Ws and one G self-align
        // to 11·11 + 6 = 127 = i8::MAX exactly. A lane at exactly 127 is
        // indistinguishable from a capped one, so the narrow pass must
        // flag it and the cascade must still return the exact score.
        let (a, p) = setup();
        let w = a.encode_byte(b'W').unwrap();
        let g = a.encode_byte(b'G').unwrap();
        let mut seq = vec![w; 11];
        seq.push(g);
        let scalar = sw_score_scalar(&seq, &seq, &p);
        assert_eq!(scalar, i8::MAX as i64, "construction lands on i8::MAX");
        let batch = make_batch::<2>(&a, std::slice::from_ref(&seq));
        let (qp, qp8, sp, sp8) = profiles(&a, &p, &seq, &batch);
        let mut ws8 = NarrowWorkspace::<2>::new();
        let mut ws16 = Workspace::<2>::new();
        let narrow = sw_narrow_sp::<2>(&seq, &sp8, &batch, &p.gap, &mut ws8);
        assert!(narrow.saturated[0], "a lane at exactly i8::MAX is flagged");
        let (o_sp, s_sp) =
            sw_adaptive_sp::<2>(&seq, &sp, &sp8, &batch, &p.gap, &mut ws8, &mut ws16);
        let (o_qp, s_qp) = sw_adaptive_qp::<2>(&qp, &qp8, &batch, &p.gap, &mut ws8, &mut ws16);
        assert_eq!(o_sp, o_qp);
        assert_eq!(o_sp.scores[0], scalar);
        assert_eq!(s_sp.widened_i16, 1);
        assert_eq!(s_qp.widened_i16, 1);
        assert!(!o_sp.overflowed[0], "127 fits comfortably in i16");
    }

    #[test]
    fn cascade_exact_at_i16_max_boundary() {
        // 2975 Ws and seven Gs self-align to 2975·11 + 7·6 = 32 767 =
        // i16::MAX exactly: the wide pass must flag the lane (the value is
        // indistinguishable from saturation) and the i64 rescue must agree
        // with the scalar reference.
        let (a, p) = setup();
        let w = a.encode_byte(b'W').unwrap();
        let g = a.encode_byte(b'G').unwrap();
        let mut seq = vec![w; 2975];
        seq.resize(2982, g);
        let scalar = sw_score_scalar(&seq, &seq, &p);
        assert_eq!(scalar, i16::MAX as i64, "construction lands on i16::MAX");
        let batch = make_batch::<2>(&a, std::slice::from_ref(&seq));
        let (_, _, sp, sp8) = profiles(&a, &p, &seq, &batch);
        let mut ws8 = NarrowWorkspace::<2>::new();
        let mut ws16 = Workspace::<2>::new();
        let (mut out, stats) =
            sw_adaptive_sp::<2>(&seq, &sp, &sp8, &batch, &p.gap, &mut ws8, &mut ws16);
        assert_eq!(stats.widened_i16, 1);
        assert_eq!(out.scores[0], i16::MAX as i64);
        assert!(out.overflowed[0], "a lane at exactly i16::MAX is flagged");
        let lane_seqs: Vec<&[u8]> = vec![&seq];
        let rescue = crate::overflow::rescue_overflows(&mut out, &seq, &batch, &lane_seqs, &p);
        assert_eq!(rescue.lanes_rescued, 1);
        assert_eq!(out.scores[0], scalar, "rescue agrees with scalar");
    }

    #[test]
    fn narrow_fuzz_cascade_against_scalar() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (a, p) = setup();
        let mut rng = SmallRng::seed_from_u64(0x8B17u64);
        for _ in 0..20 {
            let m = rng.gen_range(1..60);
            let query: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let subjects: Vec<Vec<u8>> = (0..rng.gen_range(1..=8usize))
                .map(|_| {
                    let n = rng.gen_range(1..80);
                    (0..n).map(|_| rng.gen_range(0..20u8)).collect()
                })
                .collect();
            let batch = make_batch::<8>(&a, &subjects);
            let (_, _, sp, sp8) = profiles(&a, &p, &query, &batch);
            let mut ws8 = NarrowWorkspace::<8>::new();
            let mut ws16 = Workspace::<8>::new();
            let (out, _) =
                sw_adaptive_sp::<8>(&query, &sp, &sp8, &batch, &p.gap, &mut ws8, &mut ws16);
            for (lane, s) in subjects.iter().enumerate() {
                assert_eq!(out.scores[lane], sw_score_scalar(&query, s, &p));
            }
        }
    }
}
