//! Cache-blocked inter-task kernels — the blocking optimisation of Fig. 7.
//!
//! The unblocked kernels keep two `M`-long vector columns (`H` and `F`)
//! live across the whole subject sweep: `4·M·L` bytes of working set. For
//! the paper's longest query (5478 residues) that is ~350 KB at `L = 16`
//! and ~700 KB at `L = 32` — past the Xeon's 256 KB L2 and far past the
//! Phi's 512 KB L2 (which has no L3 behind it). The paper: *"exploiting
//! data locality can seriously improve the performance on both devices …
//! this optimization has a larger improvement in the Intel Xeon Phi
//! because its cache size is lower."*
//!
//! The blocked kernel tiles the *query* dimension into blocks of
//! `block_rows`, carrying an `N`-long boundary row (`H` and `E` at the
//! block's last row) between blocks. Within a block the working set is
//! `4·block_rows·L` bytes regardless of query length. Results are
//! bit-identical to the unblocked kernels (enforced by tests).

use crate::intertask::{KernelOutput, NEG_INF_I16};
use crate::lanes::I16s;
use sw_seq::GapPenalty;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

/// Source of substitution vectors `V(q_i, d_j)` — lets one blocked loop
/// nest serve both profile layouts.
pub trait SubstSource<const L: usize> {
    /// The `L`-lane substitution vector for query row `i`, subject column `j`.
    fn v(&self, i: usize, j: usize) -> I16s<L>;
}

/// Query-profile source: per-column gather.
pub struct QpSource<'a> {
    qp: &'a QueryProfile,
    batch: &'a LaneBatch,
}

impl<const L: usize> SubstSource<L> for QpSource<'_> {
    #[inline(always)]
    fn v(&self, i: usize, j: usize) -> I16s<L> {
        I16s::gather(self.qp.row(i), self.batch.row(j))
    }
}

/// Sequence-profile source: contiguous load.
pub struct SpSource<'a> {
    sp: &'a SequenceProfile,
    query: &'a [u8],
}

impl<const L: usize> SubstSource<L> for SpSource<'_> {
    #[inline(always)]
    fn v(&self, i: usize, j: usize) -> I16s<L> {
        I16s::load(self.sp.row(self.query[i], j))
    }
}

/// Scratch for the blocked kernels.
#[derive(Debug, Default)]
pub struct BlockedWorkspace<const L: usize> {
    h_col: Vec<I16s<L>>,
    f_col: Vec<I16s<L>>,
    /// Boundary `H` row between query blocks (length `N`).
    bh: Vec<I16s<L>>,
    /// Boundary `E` row between query blocks (length `N`).
    be: Vec<I16s<L>>,
}

impl<const L: usize> BlockedWorkspace<L> {
    /// Fresh empty workspace.
    pub fn new() -> Self {
        Self {
            h_col: Vec::new(),
            f_col: Vec::new(),
            bh: Vec::new(),
            be: Vec::new(),
        }
    }
}

/// Row-blocked inter-task Smith-Waterman over an arbitrary
/// [`SubstSource`].
///
/// # Panics
/// Panics if `block_rows == 0`.
pub fn sw_blocked<const L: usize, S: SubstSource<L>>(
    m: usize,
    source: &S,
    batch: &LaneBatch,
    gap: &GapPenalty,
    block_rows: usize,
    ws: &mut BlockedWorkspace<L>,
) -> KernelOutput {
    assert!(block_rows > 0, "block_rows must be positive");
    assert_eq!(batch.lanes(), L, "batch lane width must match kernel width");
    let n = batch.padded_len();
    let first = I16s::<L>::splat(gap.first() as i16);
    let extend = I16s::<L>::splat(gap.extend as i16);

    ws.bh.clear();
    ws.bh.resize(n, I16s::zero()); // H[-1][j] = 0
    ws.be.clear();
    ws.be.resize(n, I16s::splat(NEG_INF_I16)); // E[-1][j] = -inf
    let mut vmax = I16s::<L>::zero();

    let mut i0 = 0usize;
    while i0 < m {
        let i1 = (i0 + block_rows).min(m);
        let rows = i1 - i0;
        ws.h_col.clear();
        ws.h_col.resize(rows, I16s::zero()); // H[i][-1] = 0
        ws.f_col.clear();
        ws.f_col.resize(rows, I16s::splat(NEG_INF_I16));

        // H[i0-1][j-1], starting at the j = -1 boundary (always 0).
        let mut diag_carry = I16s::<L>::zero();
        for j in 0..n {
            let old_bh = ws.bh[j]; // H[i0-1][j]
            let old_be = ws.be[j]; // E[i0-1][j]
            let mut h_diag = diag_carry;
            let mut h_up = old_bh;
            let mut e_run = old_be;
            for k in 0..rows {
                let v = source.v(i0 + k, j);
                let h_prev = ws.h_col[k];
                let f = h_prev.sat_sub(first).max(ws.f_col[k].sat_sub(extend));
                let e = h_up.sat_sub(first).max(e_run.sat_sub(extend));
                let h = h_diag.sat_add(v).max(e).max(f).max_zero();
                h_diag = h_prev;
                ws.h_col[k] = h;
                ws.f_col[k] = f;
                e_run = e;
                h_up = h;
                vmax = vmax.max(h);
            }
            ws.bh[j] = h_up; // H[i1-1][j] for the next block
            ws.be[j] = e_run; // E[i1-1][j]
            diag_carry = old_bh;
        }
        i0 = i1;
    }

    let mut scores = Vec::with_capacity(batch.real_lanes());
    let mut overflowed = Vec::with_capacity(batch.real_lanes());
    for lane in 0..batch.real_lanes() {
        scores.push(vmax[lane] as i64);
        overflowed.push(vmax[lane] == i16::MAX);
    }
    KernelOutput { scores, overflowed }
}

/// Blocked kernel, query-profile flavour.
pub fn sw_blocked_qp<const L: usize>(
    qp: &QueryProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    block_rows: usize,
    ws: &mut BlockedWorkspace<L>,
) -> KernelOutput {
    let src = QpSource { qp, batch };
    sw_blocked::<L, _>(qp.query_len(), &src, batch, gap, block_rows, ws)
}

/// Blocked kernel, sequence-profile flavour.
pub fn sw_blocked_sp<const L: usize>(
    query: &[u8],
    sp: &SequenceProfile,
    batch: &LaneBatch,
    gap: &GapPenalty,
    block_rows: usize,
    ws: &mut BlockedWorkspace<L>,
) -> KernelOutput {
    assert_eq!(
        sp.padded_len(),
        batch.padded_len(),
        "profile/batch shape mismatch"
    );
    let src = SpSource { sp, query };
    sw_blocked::<L, _>(query.len(), &src, batch, gap, block_rows, ws)
}

/// Pick a block size so the per-block working set (`≈4·rows·L` bytes plus
/// boundary rows) stays within `cache_bytes` — the tuning rule the engine
/// uses per device.
pub fn block_rows_for_cache(cache_bytes: usize, lanes: usize) -> usize {
    // H + F columns: 2 arrays × 2 bytes × lanes per row; keep half the
    // cache for profiles and boundary rows.
    let per_row = 4 * lanes;
    ((cache_bytes / 2) / per_row).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intertask::{sw_lanes_qp, sw_lanes_sp, Workspace};
    use crate::scalar::{sw_score_scalar, SwParams};
    use sw_seq::{Alphabet, SeqId};
    use sw_swdb::batch::pad_code;

    fn setup() -> (Alphabet, SwParams) {
        (Alphabet::protein(), SwParams::paper_default())
    }

    fn make_batch<const L: usize>(a: &Alphabet, seqs: &[Vec<u8>]) -> LaneBatch {
        let refs: Vec<(SeqId, &[u8])> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        LaneBatch::pack(L, &refs, pad_code(a))
    }

    #[test]
    fn blocked_equals_unblocked_all_block_sizes() {
        let (a, p) = setup();
        let query = a
            .encode_strict(b"MKVLITRAWQESTNHYFPGDMKVLITRAWQESTNHYFPGD")
            .unwrap();
        let subjects: Vec<Vec<u8>> = [
            &b"MKVLITRAWQESTNHYFPGD"[..],
            &b"DGPFYHNTSEQWARTILVKM"[..],
            &b"AAAAAAAA"[..],
        ]
        .iter()
        .map(|s| a.encode_strict(s).unwrap())
        .collect();
        let batch = make_batch::<4>(&a, &subjects);
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let sp = SequenceProfile::build(&batch, &p.matrix, &a);

        let mut iws = Workspace::<4>::new();
        let ref_qp = sw_lanes_qp::<4>(&qp, &batch, &p.gap, &mut iws);
        let ref_sp = sw_lanes_sp::<4>(&query, &sp, &batch, &p.gap, &mut iws);

        let mut bws = BlockedWorkspace::<4>::new();
        // Block sizes spanning: smaller than, dividing, not dividing, and
        // exceeding the query length.
        for block in [1, 3, 7, 8, 16, 39, 40, 41, 1000] {
            let b_qp = sw_blocked_qp::<4>(&qp, &batch, &p.gap, block, &mut bws);
            let b_sp = sw_blocked_sp::<4>(&query, &sp, &batch, &p.gap, block, &mut bws);
            assert_eq!(b_qp, ref_qp, "QP block={block}");
            assert_eq!(b_sp, ref_sp, "SP block={block}");
        }
    }

    #[test]
    fn blocked_fuzz_against_scalar() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (a, p) = setup();
        let mut rng = SmallRng::seed_from_u64(0xB10C);
        for _ in 0..15 {
            let m = rng.gen_range(2..80);
            let query: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let subjects: Vec<Vec<u8>> = (0..rng.gen_range(1..=4usize))
                .map(|_| {
                    let n = rng.gen_range(1..60);
                    (0..n).map(|_| rng.gen_range(0..20u8)).collect()
                })
                .collect();
            let batch = make_batch::<4>(&a, &subjects);
            let qp = QueryProfile::build(&query, &p.matrix, &a);
            let block = rng.gen_range(1..=m);
            let mut ws = BlockedWorkspace::<4>::new();
            let out = sw_blocked_qp::<4>(&qp, &batch, &p.gap, block, &mut ws);
            for (lane, s) in subjects.iter().enumerate() {
                assert_eq!(
                    out.scores[lane],
                    sw_score_scalar(&query, s, &p),
                    "m={m} block={block} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn gap_spanning_block_boundary() {
        // Cheap gaps force a long vertical gap crossing block boundaries:
        // the boundary E row must carry the extension state correctly.
        let (a, _) = setup();
        let p = SwParams::new(
            sw_seq::SubstMatrix::blosum62(),
            sw_seq::GapPenalty::new(2, 1),
        );
        // Query: motif, 20 junk rows, motif again; subject: motif twice.
        let mut qtext = b"MKVLITRAW".to_vec();
        qtext.extend_from_slice(&[b'G'; 20]);
        qtext.extend_from_slice(b"MKVLITRAW");
        let query = a.encode_strict(&qtext).unwrap();
        let subject = a.encode_strict(b"MKVLITRAWMKVLITRAW").unwrap();
        let batch = make_batch::<2>(&a, std::slice::from_ref(&subject));
        let qp = QueryProfile::build(&query, &p.matrix, &a);
        let expect = sw_score_scalar(&query, &subject, &p);
        let mut ws = BlockedWorkspace::<2>::new();
        for block in [1, 2, 5, 9, 10, 11, 38] {
            let out = sw_blocked_qp::<2>(&qp, &batch, &p.gap, block, &mut ws);
            assert_eq!(out.scores[0], expect, "block={block}");
        }
    }

    #[test]
    fn block_rows_for_cache_sizing() {
        // Phi-like 512 KB L2 at 32 lanes: 256 KB / 128 B = 2048 rows.
        assert_eq!(block_rows_for_cache(512 * 1024, 32), 2048);
        // Xeon-like 256 KB L2 at 16 lanes: 128 KB / 64 B = 2048 rows.
        assert_eq!(block_rows_for_cache(256 * 1024, 16), 2048);
        // Degenerate small cache still yields a workable floor.
        assert_eq!(block_rows_for_cache(1024, 64), 64);
    }

    #[test]
    #[should_panic(expected = "block_rows must be positive")]
    fn zero_block_rows_panics() {
        let (a, p) = setup();
        let q = a.encode_strict(b"MKV").unwrap();
        let batch = make_batch::<2>(&a, std::slice::from_ref(&q));
        let qp = QueryProfile::build(&q, &p.matrix, &a);
        let mut ws = BlockedWorkspace::<2>::new();
        let _ = sw_blocked_qp::<2>(&qp, &batch, &p.gap, 0, &mut ws);
    }
}
