//! Farrar's striped intra-task kernel — the paper's reference [13].
//!
//! The paper contrasts its inter-task scheme with *"fine-grained
//! vectorization schemes [13] that are able to exploit the simd
//! parallelism available within a single sequence alignment"* and argues
//! inter-task usually wins for short sequences. This module implements
//! that comparator so the claim can actually be measured (see the
//! `ablation` bench): M. Farrar, *"Striped Smith-Waterman speeds database
//! searches six times over other SIMD implementations"*, Bioinformatics
//! 23(2), 2007.
//!
//! One query is striped across lanes: query position `i` lives at stripe
//! `i % seg`, lane `i / seg` with `seg = ceil(M / L)`. The vertical gap
//! (`F`) dependency that crosses lanes is resolved with Farrar's *lazy-F*
//! correction loop. This implementation additionally refreshes `E` inside
//! the lazy loop, which makes it exact for all inputs (verified against
//! the scalar reference by fuzzing).

use crate::intertask::NEG_INF_I16;
use crate::lanes::I16s;
use crate::scalar::SwParams;

/// Striped query profile: `codes × seg` vectors.
#[derive(Debug, Clone)]
pub struct StripedProfile<const L: usize> {
    seg: usize,
    query_len: usize,
    codes: usize,
    /// `data[c * seg + k]` = scores of subject residue `c` against the
    /// query positions of stripe `k` (phantom positions score `-∞`).
    data: Vec<I16s<L>>,
}

impl<const L: usize> StripedProfile<L> {
    /// Build the striped profile of `query` under `params`.
    ///
    /// # Panics
    /// Panics if the query is empty.
    pub fn build(query: &[u8], params: &SwParams) -> Self {
        assert!(!query.is_empty(), "striped profile needs a non-empty query");
        let m = query.len();
        let seg = m.div_ceil(L);
        let codes = params.matrix.len();
        let mut data = vec![I16s::<L>::splat(NEG_INF_I16); codes * seg];
        for c in 0..codes {
            for k in 0..seg {
                let mut v = [NEG_INF_I16; L];
                for (lane, slot) in v.iter_mut().enumerate() {
                    let i = lane * seg + k;
                    if i < m {
                        *slot = params.matrix.score(query[i], c as u8) as i16;
                    }
                }
                data[c * seg + k] = I16s(v);
            }
        }
        StripedProfile {
            seg,
            query_len: m,
            codes,
            data,
        }
    }

    /// Stripe count (`ceil(M / L)`).
    #[inline]
    pub fn seg(&self) -> usize {
        self.seg
    }

    /// Query length.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    #[inline]
    fn rows(&self, c: u8) -> &[I16s<L>] {
        let s = c as usize * self.seg;
        &self.data[s..s + self.seg]
    }
}

/// Result of a striped alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedScore {
    /// Best local score (exact unless `overflowed`).
    pub score: i64,
    /// The i16 arithmetic saturated; recompute with the scalar kernel.
    pub overflowed: bool,
}

/// Striped Smith-Waterman of one (query-profile, subject) pair.
pub fn sw_striped<const L: usize>(
    profile: &StripedProfile<L>,
    subject: &[u8],
    params: &SwParams,
) -> StripedScore {
    let seg = profile.seg;
    let first = I16s::<L>::splat(params.gap.first() as i16);
    let extend = I16s::<L>::splat(params.gap.extend as i16);
    let mut h_store = vec![I16s::<L>::zero(); seg];
    let mut h_load = vec![I16s::<L>::zero(); seg];
    let mut e = vec![I16s::<L>::splat(NEG_INF_I16); seg];
    let mut vmax = I16s::<L>::zero();

    for &d in subject {
        assert!(
            (d as usize) < profile.codes,
            "subject residue outside matrix"
        );
        let prof = profile.rows(d);
        let mut f = I16s::<L>::splat(NEG_INF_I16);
        // Diagonal for stripe 0: previous column's last stripe, shifted one
        // lane up (lane 0's predecessor is the i = -1 boundary, H = 0).
        let mut h = h_store[seg - 1].shift_in(0);
        std::mem::swap(&mut h_load, &mut h_store);
        for k in 0..seg {
            h = h.sat_add(prof[k]).max(e[k]).max(f).max_zero();
            vmax = vmax.max(h);
            h_store[k] = h;
            let h_open = h.sat_sub(first);
            e[k] = e[k].sat_sub(extend).max(h_open);
            f = f.sat_sub(extend).max(h_open);
            h = h_load[k];
        }
        // Lazy-F: propagate the vertical-gap state across the lane
        // boundary until it can no longer improve anything.
        let mut k = 0usize;
        f = f.shift_in(NEG_INF_I16);
        while f.any_gt(h_store[k].sat_sub(first)) {
            let improved = h_store[k].max(f);
            h_store[k] = improved;
            vmax = vmax.max(improved);
            // Refresh E so a horizontal gap opened after this vertical gap
            // is scored from the corrected H (exactness fix over the
            // classic formulation).
            e[k] = e[k].max(improved.sat_sub(first));
            f = f.sat_sub(extend);
            k += 1;
            if k == seg {
                k = 0;
                f = f.shift_in(NEG_INF_I16);
            }
        }
    }
    let best = vmax.hmax();
    StripedScore {
        score: best as i64,
        overflowed: best == i16::MAX,
    }
}

/// Convenience: build the profile and align one pair.
pub fn sw_striped_pair<const L: usize>(
    query: &[u8],
    subject: &[u8],
    params: &SwParams,
) -> StripedScore {
    if query.is_empty() || subject.is_empty() {
        return StripedScore {
            score: 0,
            overflowed: false,
        };
    }
    let profile = StripedProfile::<L>::build(query, params);
    sw_striped(&profile, subject, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::sw_score_scalar;
    use sw_seq::Alphabet;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    #[test]
    fn matches_scalar_on_basic_pairs() {
        let p = SwParams::paper_default();
        let cases: [(&[u8], &[u8]); 6] = [
            (b"MKVLITRAW", b"MKVLITRAW"),
            (b"MKVLITRAW", b"MKRLIW"),
            (b"AAAA", b"AAGGAA"),
            (b"A", b"A"),
            (b"W", b"P"),
            (b"ARNDCQEGHILKMFPSTWYV", b"VYWTSPFMKLIHGEQCDNRA"),
        ];
        for (q, d) in cases {
            let (qe, de) = (enc(q), enc(d));
            let expect = sw_score_scalar(&qe, &de, &p);
            let got = sw_striped_pair::<8>(&qe, &de, &p);
            assert!(!got.overflowed);
            assert_eq!(got.score, expect, "q={q:?} d={d:?}");
        }
    }

    #[test]
    fn query_shorter_than_lane_count() {
        // seg = 1: the whole query fits one stripe.
        let p = SwParams::paper_default();
        let q = enc(b"MKV");
        let d = enc(b"MKVLIT");
        assert_eq!(
            sw_striped_pair::<8>(&q, &d, &p).score,
            sw_score_scalar(&q, &d, &p)
        );
    }

    #[test]
    fn lazy_f_with_cheap_gaps() {
        // Cheap gap extension stresses the lazy-F propagation across lanes.
        let p = SwParams::new(
            sw_seq::SubstMatrix::blosum62(),
            sw_seq::GapPenalty::new(1, 1),
        );
        let q = enc(b"WWWWWWWWWWWWWWWW");
        let d = enc(b"WWWWAAAAAAAAWWWWWWWWWWWW");
        assert_eq!(
            sw_striped_pair::<4>(&q, &d, &p).score,
            sw_score_scalar(&q, &d, &p)
        );
    }

    #[test]
    fn fuzz_against_scalar_all_widths() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x57121D);
        for round in 0..60 {
            // Mix cheap and default gaps to exercise lazy-F heavily.
            let p = if round % 2 == 0 {
                SwParams::paper_default()
            } else {
                SwParams::new(
                    sw_seq::SubstMatrix::blosum62(),
                    sw_seq::GapPenalty::new(rng.gen_range(0..4), rng.gen_range(1..3)),
                )
            };
            let m = rng.gen_range(1..70);
            let n = rng.gen_range(1..70);
            let q: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let d: Vec<u8> = (0..n).map(|_| rng.gen_range(0..20u8)).collect();
            let expect = sw_score_scalar(&q, &d, &p);
            assert_eq!(
                sw_striped_pair::<4>(&q, &d, &p).score,
                expect,
                "L=4 round={round}"
            );
            assert_eq!(
                sw_striped_pair::<8>(&q, &d, &p).score,
                expect,
                "L=8 round={round}"
            );
            assert_eq!(
                sw_striped_pair::<16>(&q, &d, &p).score,
                expect,
                "L=16 round={round}"
            );
        }
    }

    #[test]
    fn profile_reuse_across_subjects() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAWQESTNHY");
        let profile = StripedProfile::<8>::build(&q, &p);
        for d in [&b"MKVLITRAW"[..], &b"QQQQ"[..], &b"MKVITRWQESTNHY"[..]] {
            let de = enc(d);
            assert_eq!(
                sw_striped(&profile, &de, &p).score,
                sw_score_scalar(&q, &de, &p)
            );
        }
    }

    #[test]
    fn overflow_detected() {
        let p = SwParams::paper_default();
        let long = vec![Alphabet::protein().encode_byte(b'W').unwrap(); 3100];
        let out = sw_striped_pair::<8>(&long, &long, &p);
        assert!(out.overflowed);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let p = SwParams::paper_default();
        assert_eq!(sw_striped_pair::<8>(&[], &enc(b"AAA"), &p).score, 0);
        assert_eq!(sw_striped_pair::<8>(&enc(b"AAA"), &[], &p).score, 0);
    }

    #[test]
    fn seg_math() {
        let p = SwParams::paper_default();
        let q = enc(b"MKVLITRAW"); // 9 residues
        let prof = StripedProfile::<4>::build(&q, &p);
        assert_eq!(prof.seg(), 3); // ceil(9/4)
        assert_eq!(prof.query_len(), 9);
    }
}
