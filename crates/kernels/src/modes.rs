//! Global and semi-global alignment modes.
//!
//! The paper is about local (Smith-Waterman) search, but a usable
//! alignment library also serves the two classic relatives — and having
//! them lets tests pin down the *relationships* between modes, which is a
//! strong cross-check on all three implementations:
//!
//! * **Global** (Needleman-Wunsch): both sequences aligned end to end.
//! * **Semi-global** ("glocal", as used in read mapping): the *query* is
//!   aligned end to end, the subject contributes any substring — leading
//!   and trailing subject residues are free.
//!
//! For any pair and scoring: `local ≥ semi_global ≥ global` (each mode
//! relaxes constraints of the next), with equality for identical
//! sequences under positive diagonals. Property-tested below.

use crate::scalar::{SwParams, NEG_INF};

/// Global (Needleman-Wunsch) alignment score with affine gaps.
///
/// Terminal gaps are charged like any other gap.
pub fn nw_score_global(query: &[u8], subject: &[u8], params: &SwParams) -> i64 {
    let first = params.gap.first() as i64;
    let extend = params.gap.extend as i64;
    let m = query.len();
    let n = subject.len();
    if m == 0 && n == 0 {
        return 0;
    }
    if m == 0 {
        return -(params.gap.cost(n as u32));
    }
    if n == 0 {
        return -(params.gap.cost(m as u32));
    }
    // Row-wise DP, three-state affine.
    let gap_to = |len: usize| -> i64 { -(params.gap.cost(len as u32)) };
    let mut h_row: Vec<i64> = (0..=n)
        .map(|j| if j == 0 { 0 } else { gap_to(j) })
        .collect();
    let mut e_col = vec![NEG_INF; n + 1];
    for i in 1..=m {
        let row = params.matrix.row(query[i - 1]);
        let mut h_diag = h_row[0]; // H[i-1][0]
        h_row[0] = gap_to(i);
        let mut h_left = h_row[0];
        let mut f = NEG_INF;
        for j in 1..=n {
            let up = h_row[j];
            let e = (up - first).max(e_col[j] - extend);
            f = (h_left - first).max(f - extend);
            let h = (h_diag + row[subject[j - 1] as usize] as i64).max(e).max(f);
            h_diag = up;
            e_col[j] = e;
            h_row[j] = h;
            h_left = h;
        }
    }
    h_row[n]
}

/// Semi-global score: the query aligned end to end, free leading and
/// trailing gaps in the subject (the subject contributes a substring).
pub fn sw_score_semi_global(query: &[u8], subject: &[u8], params: &SwParams) -> i64 {
    let first = params.gap.first() as i64;
    let extend = params.gap.extend as i64;
    let m = query.len();
    let n = subject.len();
    if m == 0 {
        return 0; // empty query aligns to an empty substring for free
    }
    if n == 0 {
        return -(params.gap.cost(m as u32)); // the whole query is gapped
    }
    // H[0][j] = 0 for all j (free leading subject gap); query gaps charged.
    let gap_to = |len: usize| -> i64 { -(params.gap.cost(len as u32)) };
    let mut h_row = vec![0i64; n + 1];
    let mut e_col = vec![NEG_INF; n + 1];
    let mut best_last_row = NEG_INF;
    for i in 1..=m {
        let row = params.matrix.row(query[i - 1]);
        let mut h_diag = h_row[0];
        h_row[0] = gap_to(i);
        let mut h_left = h_row[0];
        let mut f = NEG_INF;
        for j in 1..=n {
            let up = h_row[j];
            let e = (up - first).max(e_col[j] - extend);
            f = (h_left - first).max(f - extend);
            let h = (h_diag + row[subject[j - 1] as usize] as i64).max(e).max(f);
            h_diag = up;
            e_col[j] = e;
            h_row[j] = h;
            h_left = h;
        }
        if i == m {
            // Free trailing subject gap: best over the last row.
            best_last_row = h_row[1..].iter().cloned().fold(h_row[0], i64::max);
        }
    }
    best_last_row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::sw_score_scalar;
    use sw_seq::{Alphabet, GapPenalty, SubstMatrix};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    fn p() -> SwParams {
        SwParams::paper_default()
    }

    #[test]
    fn identical_sequences_all_modes_agree() {
        let q = enc(b"MKVLITRAW");
        let self_score: i64 = q.iter().map(|&c| p().matrix.score(c, c) as i64).sum();
        assert_eq!(nw_score_global(&q, &q, &p()), self_score);
        assert_eq!(sw_score_semi_global(&q, &q, &p()), self_score);
        assert_eq!(sw_score_scalar(&q, &q, &p()), self_score);
    }

    #[test]
    fn embedded_query_semi_global_equals_local() {
        // Query embedded in a subject: semi-global aligns the full query
        // against the matching substring for free flanks.
        let q = enc(b"MKVLITRAW");
        let s = enc(b"PPPPMKVLITRAWPPPP");
        let self_score: i64 = q.iter().map(|&c| p().matrix.score(c, c) as i64).sum();
        assert_eq!(sw_score_semi_global(&q, &s, &p()), self_score);
        assert_eq!(sw_score_scalar(&q, &s, &p()), self_score);
        // Global must pay for the flanking subject residues.
        assert!(nw_score_global(&q, &s, &p()) < self_score);
    }

    #[test]
    fn mode_ordering_holds() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x6C0BA1);
        for _ in 0..40 {
            let m = rng.gen_range(1..50);
            let n = rng.gen_range(1..50);
            let q: Vec<u8> = (0..m).map(|_| rng.gen_range(0..20u8)).collect();
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(0..20u8)).collect();
            let params = SwParams::new(
                SubstMatrix::blosum62(),
                GapPenalty::new(rng.gen_range(0..12), rng.gen_range(1..4)),
            );
            let local = sw_score_scalar(&q, &s, &params);
            let semi = sw_score_semi_global(&q, &s, &params);
            let global = nw_score_global(&q, &s, &params);
            assert!(local >= semi, "local {local} >= semi {semi}");
            assert!(semi >= global, "semi {semi} >= global {global}");
        }
    }

    #[test]
    fn empty_sequence_boundary_cases() {
        let q = enc(b"MKV");
        let params = p();
        // Global: all-gap alignment.
        assert_eq!(nw_score_global(&q, &[], &params), -(params.gap.cost(3)));
        assert_eq!(nw_score_global(&[], &q, &params), -(params.gap.cost(3)));
        assert_eq!(nw_score_global(&[], &[], &params), 0);
        // Semi-global: empty query is free; empty subject gaps the query.
        assert_eq!(sw_score_semi_global(&[], &q, &params), 0);
        assert_eq!(
            sw_score_semi_global(&q, &[], &params),
            -(params.gap.cost(3))
        );
    }

    #[test]
    fn global_symmetry() {
        let a = enc(b"MKVLIT");
        let b = enc(b"MKRLITW");
        assert_eq!(nw_score_global(&a, &b, &p()), nw_score_global(&b, &a, &p()));
    }

    #[test]
    fn semi_global_prefers_best_window() {
        // Two candidate windows in the subject; the better one wins.
        let q = enc(b"MKVLIT");
        let s = enc(b"MKVLIAGGGGMKVLIT"); // imperfect early window, perfect late one
        let self_score: i64 = q.iter().map(|&c| p().matrix.score(c, c) as i64).sum();
        assert_eq!(sw_score_semi_global(&q, &s, &p()), self_score);
    }
}
