//! sw-serve: the always-on Smith-Waterman search service.
//!
//! A daemon loads and digest-verifies a database snapshot once, keeps
//! the prepared batches resident, and serves search jobs over a unix
//! socket speaking line-delimited JSON. Concurrently queued submits are
//! grouped by a batching collector into shared dual-pool regions over
//! the resident database — cross-query lane batching, the daemon-side
//! analogue of `search_many` — while each job keeps its own isolation:
//! a drain signal scoped under the daemon's shutdown signal (cancel
//! removes one query from the region without touching batch-mates), a
//! per-query trace epoch/query-id, and a fingerprint-derived checkpoint
//! file — no environment reads, no process globals, no shared mutable
//! state on the request path. Admission is a per-region query cap plus
//! a per-tenant in-flight quota; everything submitted lands in the
//! [`Registry`], which is dumped as JSONL on shutdown.
//!
//! Layering: [`client`] and [`server`] share the [`json`] wire helpers;
//! [`server`] demuxes region outcomes through the `batch` collector's
//! reply channels; the CLI's `serve`/`submit` commands and the
//! integration tests are both thin wrappers over these modules.

//! Observability: every lifecycle transition is stamped on the job's
//! [`obs::Phases`] record and folded into the daemon-lifetime
//! aggregator in [`obs`] — phase-latency histograms, SLO counters and
//! windowed aggregate GCUPS served as a Prometheus snapshot by
//! `{"op":"metrics"}`, readiness/liveness by `{"op":"health"}`, and a
//! leveled structured ops log with a slow-query timeline dump.

mod batch;
pub mod client;
pub mod coord;
pub mod journal;
pub mod json;
pub mod obs;
pub mod registry;
mod server;
pub mod transport;

pub use coord::{CoordConfig, CoordDrill, CoordError, CoordOutcome, ShardSpec};
pub use journal::{CommittedShard, CoordJournal, ShardSlot};
pub use obs::{coord_prometheus, LogLevel, Obs, ObsConfig, Phases, ShardRole};
pub use registry::{JobRecord, JobState, Registry, StatsSnapshot, TenantTotals};
pub use server::{serve, ServeConfig, ServeError};
pub use transport::{Endpoint, Listener, NetTransport, RetryPolicy, ShardTransport, Stream};
