//! sw-serve: the always-on Smith-Waterman search service.
//!
//! A daemon loads and digest-verifies a database snapshot once, keeps
//! the prepared batches resident, and serves search jobs over a unix
//! socket speaking line-delimited JSON. Each job is fully isolated from
//! its neighbours: per-request [`sw_core::SearchConfig`] and trace
//! epoch/query-id, a per-job drain signal scoped under the daemon's
//! shutdown signal, and a fingerprint-derived checkpoint file — no
//! environment reads, no process globals, no shared mutable state on
//! the request path. Admission is a concurrency cap plus a per-tenant
//! in-flight quota; everything submitted lands in the [`Registry`],
//! which is dumped as JSONL on shutdown.
//!
//! Layering: [`client`] and [`server`] share the [`json`] wire helpers;
//! the CLI's `serve`/`submit` commands and the integration tests are
//! both thin wrappers over these modules.

pub mod client;
pub mod json;
pub mod registry;
mod server;

pub use registry::{JobRecord, JobState, Registry, StatsSnapshot};
pub use server::{serve, ServeConfig, ServeError};
