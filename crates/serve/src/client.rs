//! Client side of the serve protocol: request builders, a one-shot
//! request runner, and the submit-stream parser. Used by the `swsearch
//! submit` front-end and the integration tests — both speak exactly
//! this code, so the wire format has one reader and one writer.

use crate::json;
use crate::transport::{Endpoint, RetryPolicy, Stream};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Build a `submit` request line.
pub fn submit_request(tenant: &str, query_fasta: &str, top: usize, drill: Option<&str>) -> String {
    let mut line = format!(
        "{{\"op\":\"submit\",\"tenant\":\"{}\",\"top\":{top},\"query\":\"{}\"",
        json::escape(tenant),
        json::escape(query_fasta)
    );
    if let Some(d) = drill {
        line.push_str(&format!(",\"drill\":\"{}\"", json::escape(d)));
    }
    line.push('}');
    line
}

/// Build a `status` request line.
pub fn status_request(job: u64) -> String {
    format!("{{\"op\":\"status\",\"job\":{job}}}")
}

/// Build a `cancel` request line.
pub fn cancel_request(job: u64) -> String {
    format!("{{\"op\":\"cancel\",\"job\":{job}}}")
}

/// Build a `stats` request line.
pub fn stats_request() -> String {
    "{\"op\":\"stats\"}".to_string()
}

/// Build a `shutdown` request line.
pub fn shutdown_request() -> String {
    "{\"op\":\"shutdown\"}".to_string()
}

/// Build a `metrics` request line. The daemon answers with a raw
/// Prometheus text snapshot (many lines, not JSON).
pub fn metrics_request() -> String {
    "{\"op\":\"metrics\"}".to_string()
}

/// Build a `health` request line. The daemon answers with one JSON
/// line; `ready` carries the readiness verdict, answering at all is
/// liveness.
pub fn health_request() -> String {
    "{\"op\":\"health\"}".to_string()
}

/// Send one request line and collect every response line until the
/// daemon closes the connection. For `submit` this blocks until the job
/// finishes (the daemon streams the result on the same connection).
pub fn request(socket: &Path, line: &str) -> io::Result<Vec<String>> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut lines = Vec::new();
    for l in BufReader::new(stream).lines() {
        lines.push(l?);
    }
    Ok(lines)
}

/// [`request`] over any [`Endpoint`] (unix socket or `tcp://host:port`)
/// — one connect attempt, fail fast.
pub fn request_endpoint(endpoint: &Endpoint, line: &str) -> io::Result<Vec<String>> {
    request_endpoint_retry(endpoint, line, &RetryPolicy::default()).map(|(lines, _)| lines)
}

/// [`request_endpoint`] with bounded connect retries under jittered
/// exponential backoff, so a daemon mid-restart does not fail the whole
/// query. Only the *connect* is retried — once a connection is up, a
/// broken stream is the caller's decision to repeat (a submit may have
/// side effects). Returns the reply lines and how many retries were
/// spent.
pub fn request_endpoint_retry(
    endpoint: &Endpoint,
    line: &str,
    policy: &RetryPolicy,
) -> io::Result<(Vec<String>, u32)> {
    let connect_timeout = Duration::from_millis(1_000);
    let mut used = 0u32;
    let mut stream: Stream = loop {
        match endpoint.connect(connect_timeout) {
            Ok(s) => break s,
            Err(e) if used >= policy.retries => return Err(e),
            Err(_) => {
                std::thread::sleep(policy.backoff(used));
                used += 1;
            }
        }
    };
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown_write()?;
    let mut lines = Vec::new();
    for l in BufReader::new(stream).lines() {
        lines.push(l?);
    }
    Ok((lines, used))
}

/// One streamed hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HitLine {
    /// 1-based rank.
    pub rank: u64,
    /// Exact Smith-Waterman score.
    pub score: i64,
    /// Global database index of the hit sequence. Shard workers report
    /// `shard base + in-shard id`, so the coordinator's merge tie-break
    /// (score, then this index) matches the unsharded run's.
    pub id: u64,
    /// Database header.
    pub header: String,
}

/// Parsed outcome of a submit stream.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Job id the daemon assigned.
    pub job: u64,
    /// Final state: `done`, `cancelled` or `failed`.
    pub state: String,
    /// Checkpoint resumes the run stitched together.
    pub resumes: u64,
    /// Queries that shared this job's dual-pool region (0 when the job
    /// never reached a region, e.g. cancelled while queued).
    pub batch: u64,
    /// Streamed hits (`done` only).
    pub hits: Vec<HitLine>,
    /// Failure message (`failed` only).
    pub error: Option<String>,
}

/// Parse a full submit response. A rejection (quota, bad query, bad
/// drill) or a truncated stream is an `Err` with the daemon's message.
pub fn parse_submit_response(lines: &[String]) -> Result<SubmitOutcome, String> {
    let ack = lines.first().ok_or("empty response")?;
    if json::field_bool(ack, "ok") != Some(true) {
        return Err(json::field_str(ack, "error").unwrap_or_else(|| "rejected".to_string()));
    }
    let job = json::field_u64(ack, "job").ok_or("ack without job id")?;
    if lines.last().map(|l| json::field_bool(l, "end")) != Some(Some(true)) {
        return Err(format!("job {job}: response stream truncated"));
    }
    let state_line = lines
        .get(1)
        .ok_or(format!("job {job}: no final state line"))?;
    let state =
        json::field_str(state_line, "state").ok_or(format!("job {job}: malformed state"))?;
    let mut hits = Vec::new();
    for l in &lines[2..lines.len() - 1] {
        hits.push(HitLine {
            rank: json::field_u64(l, "rank").ok_or(format!("job {job}: malformed hit line"))?,
            score: json::field_u64(l, "score").ok_or(format!("job {job}: malformed hit line"))?
                as i64,
            id: json::field_u64(l, "id").unwrap_or(0),
            header: json::field_str(l, "header").ok_or(format!("job {job}: malformed hit line"))?,
        });
    }
    Ok(SubmitOutcome {
        job,
        state,
        resumes: json::field_u64(state_line, "resumes").unwrap_or(0),
        batch: json::field_u64(state_line, "batch").unwrap_or(0),
        hits,
        error: json::field_str(state_line, "error"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_stream_roundtrips() {
        let lines: Vec<String> = [
            "{\"ok\":true,\"job\":3,\"state\":\"queued\"}",
            "{\"job\":3,\"state\":\"done\",\"hits\":2,\"resumes\":1,\"batch\":4}",
            "{\"rank\":1,\"score\":99,\"id\":17,\"header\":\"sp|A|one\"}",
            "{\"rank\":2,\"score\":42,\"id\":4,\"header\":\"sp|B|two\"}",
            "{\"end\":true}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_submit_response(&lines).unwrap();
        assert_eq!(o.job, 3);
        assert_eq!(o.state, "done");
        assert_eq!(o.resumes, 1);
        assert_eq!(o.batch, 4, "region size rides the state line");
        assert_eq!(o.hits.len(), 2);
        assert_eq!(o.hits[0].score, 99);
        assert_eq!(o.hits[0].id, 17);
        assert_eq!(o.hits[1].header, "sp|B|two");

        // Rejection surfaces the daemon's message.
        let rej = vec!["{\"ok\":false,\"error\":\"tenant 'x' quota exceeded\"}".to_string()];
        assert!(parse_submit_response(&rej).unwrap_err().contains("quota"));

        // A missing end marker is a truncated stream.
        let trunc = lines[..2].to_vec();
        assert!(parse_submit_response(&trunc)
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn request_builders_are_wellformed() {
        let r = submit_request("acme", ">q\nMKV\n", 5, Some("delay@0:100"));
        assert_eq!(json::field_str(&r, "op").as_deref(), Some("submit"));
        assert_eq!(json::field_str(&r, "query").as_deref(), Some(">q\nMKV\n"));
        assert_eq!(json::field_u64(&r, "top"), Some(5));
        assert_eq!(json::field_str(&r, "drill").as_deref(), Some("delay@0:100"));
        assert_eq!(json::field_u64(&status_request(7), "job"), Some(7));
        assert_eq!(json::field_u64(&cancel_request(9), "job"), Some(9));
        assert_eq!(
            json::field_str(&stats_request(), "op").as_deref(),
            Some("stats")
        );
        assert_eq!(
            json::field_str(&shutdown_request(), "op").as_deref(),
            Some("shutdown")
        );
        assert_eq!(
            json::field_str(&metrics_request(), "op").as_deref(),
            Some("metrics")
        );
        assert_eq!(
            json::field_str(&health_request(), "op").as_deref(),
            Some("health")
        );
    }
}
