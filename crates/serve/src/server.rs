//! The daemon itself: a unix-socket accept loop multiplexing searches
//! over one resident [`HeteroEngine`] + [`PreparedDb`].
//!
//! Every connection carries exactly one request line. Control ops
//! (`status`/`cancel`/`stats`/`shutdown`) answer with one line and
//! close; `submit` keeps the connection open and streams — ack, final
//! state, the top-K hit lines, an `end` marker — so the client needs no
//! polling loop for the common case.
//!
//! Nothing on the request path touches process-global state: each job
//! gets its own [`DrainSignal`] scoped under the daemon's shutdown
//! signal, its own trace epoch and query id via
//! [`TraceConfig::for_query`], and its checkpoint file is derived from
//! the search fingerprint inside `checkpoint_dir`. The accept loop is
//! non-blocking and polls the shutdown signal, so both a `shutdown`
//! request and a process SIGINT (routed through the signal's parent)
//! stop the daemon the same way: stop accepting, drain in-flight jobs
//! (checkpointing them), dump the registry, remove the socket.

use crate::json;
use crate::registry::{JobState, Registry, StatsSnapshot};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use sw_core::{DurableOptions, HeteroEngine, HeteroSearchConfig, PreparedDb, TraceConfig};
use sw_sched::{DrainSignal, FaultInjector, FaultKind, FaultPlan, FaultSpec, DEVICE_ACCEL};
use sw_seq::Alphabet;

/// Boxed error for daemon startup/teardown failures (per-connection
/// errors never propagate here).
pub type ServeError = Box<dyn std::error::Error + Send + Sync>;

/// Daemon knobs. [`ServeConfig::new`] gives the defaults the CLI
/// advertises.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket to listen on (created on start, removed on stop).
    pub socket: PathBuf,
    /// Searches allowed to run at once; admitted jobs past the cap wait
    /// in the queue.
    pub max_concurrent: usize,
    /// Max queued+running jobs per tenant; a submit over the quota is
    /// rejected at the door.
    pub tenant_quota: usize,
    /// Accelerator-share seed for each job's split plan (the dynamic
    /// scheduler rebalances from there).
    pub accel_frac: f64,
    /// Periodic checkpoint interval in committed chunks.
    pub interval_chunks: u64,
    /// Fingerprint-named per-job checkpoints live here; `None` disables
    /// checkpointing (cancelled jobs then restart from scratch).
    pub checkpoint_dir: Option<PathBuf>,
    /// Per-job query-tagged JSONL trace exports (`job-<id>.jsonl`)
    /// live here; `None` disables tracing.
    pub trace_dir: Option<PathBuf>,
    /// Dump the job registry as JSONL here on shutdown.
    pub registry_out: Option<PathBuf>,
    /// Hits streamed per job when the submit carries no `top`.
    pub default_top: usize,
}

impl ServeConfig {
    /// Defaults: 2 concurrent searches, tenant quota 4, 55 % plan seed,
    /// checkpoint every 4 chunks, top-10, no artifact outputs.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            max_concurrent: 2,
            tenant_quota: 4,
            accel_frac: 0.55,
            interval_chunks: 4,
            checkpoint_dir: None,
            trace_dir: None,
            registry_out: None,
            default_top: 10,
        }
    }
}

/// Everything a connection handler needs, by reference. `shutdown` is
/// `'static` because per-job signals are scoped under it and outlive
/// the borrow checker's patience otherwise.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    engine: &'a HeteroEngine,
    prepared: &'a PreparedDb,
    alphabet: &'a Alphabet,
    base: &'a HeteroSearchConfig,
    config: &'a ServeConfig,
    registry: &'a Registry,
    shutdown: &'static DrainSignal,
}

/// Run the daemon until `shutdown` (or a parent of it) is requested.
/// Blocks the calling thread; spawns one thread per connection inside a
/// scope, so every job has drained before this returns. Returns the
/// final registry counts.
pub fn serve(
    engine: &HeteroEngine,
    prepared: &PreparedDb,
    alphabet: &Alphabet,
    base: &HeteroSearchConfig,
    config: &ServeConfig,
    shutdown: &'static DrainSignal,
) -> Result<StatsSnapshot, ServeError> {
    // A stale socket from a crashed daemon would fail the bind; a live
    // one is indistinguishable, so refuse only if someone answers.
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(format!("{} already has a live daemon", config.socket.display()).into());
        }
        std::fs::remove_file(&config.socket)?;
    }
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;
    let registry = Registry::new();
    let ctx = Ctx {
        engine,
        prepared,
        alphabet,
        base,
        config,
        registry: &registry,
        shutdown,
    };
    std::thread::scope(|s| {
        while !shutdown.is_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    s.spawn(move || {
                        // Connection errors (peer hung up mid-stream)
                        // affect that connection only.
                        let _ = handle_connection(ctx, stream);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Scope exit joins every connection thread: in-flight jobs see
        // the shutdown through their scoped drains and checkpoint out.
    });
    if let Some(path) = &config.registry_out {
        std::fs::write(path, registry.dump_jsonl())?;
    }
    let _ = std::fs::remove_file(&config.socket);
    Ok(registry.stats())
}

fn handle_connection(ctx: Ctx<'_>, stream: UnixStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let line = line.trim_end().to_string();
    let mut w = BufWriter::new(stream);
    match json::field_str(&line, "op").as_deref() {
        Some("submit") => op_submit(ctx, &line, &mut w)?,
        Some("status") => {
            match json::field_u64(&line, "job").and_then(|id| ctx.registry.status(id)) {
                Some(rec) => writeln!(w, "{}", rec.to_json())?,
                None => fail(&mut w, "no such job")?,
            }
        }
        Some("cancel") => match json::field_u64(&line, "job") {
            Some(id) => match ctx.registry.cancel(id) {
                Ok(state) => writeln!(
                    w,
                    "{{\"ok\":true,\"job\":{id},\"was\":\"{}\"}}",
                    state.name()
                )?,
                Err(e) => fail(&mut w, &e)?,
            },
            None => fail(&mut w, "cancel needs a job id")?,
        },
        Some("stats") => writeln!(w, "{}", ctx.registry.stats().to_json())?,
        Some("shutdown") => {
            ctx.shutdown.request();
            writeln!(w, "{{\"ok\":true,\"state\":\"draining\"}}")?;
        }
        _ => fail(&mut w, "unknown op")?,
    }
    w.flush()
}

fn fail<W: Write>(w: &mut W, msg: &str) -> io::Result<()> {
    writeln!(w, "{{\"ok\":false,\"error\":\"{}\"}}", json::escape(msg))
}

fn op_submit<W: Write>(ctx: Ctx<'_>, line: &str, w: &mut W) -> io::Result<()> {
    let Some(fasta) = json::field_str(line, "query") else {
        return fail(w, "submit needs a query");
    };
    let tenant = json::field_str(line, "tenant").unwrap_or_else(|| "anon".to_string());
    let top = json::field_u64(line, "top").unwrap_or(ctx.config.default_top as u64) as usize;
    let query = match parse_query(&fasta, ctx.alphabet) {
        Ok(q) => q,
        Err(e) => return fail(w, &e),
    };
    let injector = match json::field_str(line, "drill")
        .as_deref()
        .map(parse_delay_drill)
    {
        None => FaultInjector::none(),
        Some(Ok(spec)) => FaultInjector::new(FaultPlan::single(spec)),
        Some(Err(e)) => return fail(w, &e),
    };
    let drain = Arc::new(DrainSignal::scoped(ctx.shutdown));
    let (id, drain) = match ctx.registry.submit(
        &tenant,
        query.residues.len(),
        ctx.config.tenant_quota,
        drain,
    ) {
        Ok(v) => v,
        Err(e) => return fail(w, &e),
    };
    // Ack immediately so the submitter learns its job id (and can
    // cancel) before the queue wait.
    writeln!(w, "{{\"ok\":true,\"job\":{id},\"state\":\"queued\"}}")?;
    w.flush()?;
    if !ctx.registry.admit(id, ctx.config.max_concurrent) {
        writeln!(
            w,
            "{{\"job\":{id},\"state\":\"cancelled\",\"hits\":0,\"resumes\":0}}"
        )?;
        return writeln!(w, "{{\"end\":true}}");
    }
    // The registry is updated before the stream writes: a submitter
    // that hung up mid-run must not leave its job in `running`.
    match run_job(ctx, id, &drain, &query.residues, top, &injector) {
        Ok(JobOutcome::Done { hits, resumes }) => {
            ctx.registry
                .finish(id, JobState::Done, hits.len(), resumes, None);
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"done\",\"hits\":{},\"resumes\":{resumes}}}",
                hits.len()
            )?;
            for (rank, (score, header)) in hits.iter().enumerate() {
                writeln!(
                    w,
                    "{{\"rank\":{},\"score\":{score},\"header\":\"{}\"}}",
                    rank + 1,
                    json::escape(header)
                )?;
            }
        }
        Ok(JobOutcome::Drained { resumes }) => {
            ctx.registry
                .finish(id, JobState::Cancelled, 0, resumes, None);
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"cancelled\",\"hits\":0,\"resumes\":{resumes}}}"
            )?;
        }
        Err(e) => {
            ctx.registry
                .finish(id, JobState::Failed, 0, 0, Some(e.clone()));
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"failed\",\"error\":\"{}\"}}",
                json::escape(&e)
            )?;
        }
    }
    writeln!(w, "{{\"end\":true}}")
}

enum JobOutcome {
    Done {
        hits: Vec<(i64, String)>,
        resumes: u64,
    },
    Drained {
        resumes: u64,
    },
}

fn run_job(
    ctx: Ctx<'_>,
    id: u64,
    drain: &DrainSignal,
    query: &[u8],
    top: usize,
    injector: &FaultInjector,
) -> Result<JobOutcome, String> {
    let plan = ctx
        .engine
        .plan_split(ctx.prepared, query.len(), ctx.config.accel_frac);
    let mut cfg = *ctx.base;
    // Per-request trace state: fresh epoch, the job id as the query
    // tag. Nothing here is shared with any other in-flight job.
    cfg.trace = TraceConfig {
        level: if ctx.config.trace_dir.is_some() {
            sw_trace::TraceLevel::Full
        } else {
            sw_trace::TraceLevel::Off
        },
        ..TraceConfig::default()
    }
    .for_query(id);
    let dopts = DurableOptions {
        checkpoint_path: None,
        checkpoint_dir: ctx.config.checkpoint_dir.as_deref(),
        interval_chunks: ctx.config.interval_chunks,
        drain: Some(drain),
        resume: true,
    };
    let d = ctx
        .engine
        .search_dynamic_resumable(query, ctx.prepared, &plan, &cfg, injector, &dopts)
        .map_err(|e| e.to_string())?;
    match d.outcome {
        Some(o) => {
            if let (Some(dir), Some(tl)) = (&ctx.config.trace_dir, &o.timeline) {
                // Trace export is best-effort: a full disk must not fail
                // the search that already completed.
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(
                    dir.join(format!("job-{id}.jsonl")),
                    sw_trace::export::jsonl(tl),
                );
            }
            let hits = o
                .results
                .top(top)
                .iter()
                .map(|h| (h.score, ctx.prepared.sorted.db().header(h.id).to_string()))
                .collect();
            Ok(JobOutcome::Done {
                hits,
                resumes: d.resumes,
            })
        }
        None => Ok(JobOutcome::Drained { resumes: d.resumes }),
    }
}

fn parse_query(fasta: &str, alphabet: &Alphabet) -> Result<sw_seq::EncodedSeq, String> {
    let seqs = sw_seq::fasta::read_encoded(io::Cursor::new(fasta.as_bytes()), alphabet)
        .map_err(|e| format!("query FASTA: {e}"))?;
    seqs.into_iter()
        .next()
        .ok_or_else(|| "query FASTA holds no sequences".to_string())
}

/// The daemon accepts only the benign drill: `delay@CHUNK:MS` stalls
/// one accelerator chunk (deterministic timing for tests). Kill/wedge
/// drills stay CLI-only — a shared daemon is no place for them.
fn parse_delay_drill(s: &str) -> Result<FaultSpec, String> {
    let bad = || format!("bad drill '{s}': the daemon accepts delay@CHUNK:MS only");
    let rest = s.strip_prefix("delay@").ok_or_else(bad)?;
    let (chunk, ms) = rest.split_once(':').ok_or_else(bad)?;
    Ok(FaultSpec {
        device: DEVICE_ACCEL,
        chunk: chunk.parse().map_err(|_| bad())?,
        kind: FaultKind::Delay(Duration::from_millis(ms.parse().map_err(|_| bad())?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_parser_accepts_delay_only() {
        let spec = parse_delay_drill("delay@3:250").unwrap();
        assert_eq!(spec.device, DEVICE_ACCEL);
        assert_eq!(spec.chunk, 3);
        assert_eq!(spec.kind, FaultKind::Delay(Duration::from_millis(250)));
        assert!(parse_delay_drill("kill@3").is_err());
        assert!(parse_delay_drill("delay@3").is_err());
        assert!(parse_delay_drill("delay@x:9").is_err());
    }

    #[test]
    fn query_parser_rejects_garbage() {
        let a = Alphabet::protein();
        assert!(parse_query(">q\nMKVL\n", &a).unwrap().residues.len() == 4);
        assert!(parse_query("", &a).is_err());
    }
}
