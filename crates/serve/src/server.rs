//! The daemon itself: a unix-socket accept loop multiplexing searches
//! over one resident [`HeteroEngine`] + [`PreparedDb`].
//!
//! Every connection carries exactly one request line. Control ops
//! (`status`/`cancel`/`stats`/`shutdown`) answer with one line and
//! close; `submit` keeps the connection open and streams — ack, final
//! state, the top-K hit lines, an `end` marker — so the client needs no
//! polling loop for the common case.
//!
//! Searches are *batched across queries*: connection handlers park
//! accepted submits in the [`Batcher`], and one collector thread groups
//! everything that arrives within a gather window into a single shared
//! dual-pool region over the resident database
//! ([`HeteroEngine::search_many_resumable`]) — up to `max_concurrent`
//! queries per region, so concurrent short queries share scheduling
//! overhead and fill lanes a solo run would leave idle. Per-query
//! isolation survives the sharing: each job keeps its own
//! [`DrainSignal`] scoped under the daemon's shutdown signal (cancel
//! removes that query's tasks from the region without touching
//! batch-mates), its own trace epoch and query id via
//! [`TraceConfig::for_query`], and its own fingerprint-keyed checkpoint
//! file inside `checkpoint_dir`. The accept loop is non-blocking and
//! polls the shutdown signal, so both a `shutdown` request and a
//! process SIGINT (routed through the signal's parent) stop the daemon
//! the same way: stop accepting, drain the in-flight region
//! (checkpointing incomplete queries), cancel-reply queued jobs, dump
//! the registry, remove the socket.

use crate::batch::{Batcher, JobReply, PendingJob};
use crate::json;
use crate::obs::{LogLevel, Obs, ObsConfig, ShardRole};
use crate::registry::{JobState, Registry, StatsSnapshot};
use crate::transport::{Endpoint, Listener, Stream};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use sw_core::{
    BatchQuery, DurableOptions, HeteroEngine, HeteroSearchConfig, PreparedDb, TraceConfig,
};
use sw_sched::{DrainSignal, FaultInjector, FaultKind, FaultPlan, FaultSpec, DEVICE_ACCEL};
use sw_seq::Alphabet;

/// Boxed error for daemon startup/teardown failures (per-connection
/// errors never propagate here).
pub type ServeError = Box<dyn std::error::Error + Send + Sync>;

/// Daemon knobs. [`ServeConfig::new`] gives the defaults the CLI
/// advertises.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen: a unix socket (created on start, removed on
    /// stop) or a `tcp://host:port` bind for remote shard workers.
    pub listen: Endpoint,
    /// Queries batched into one shared dual-pool region; submits past
    /// the cap wait for the next region.
    pub max_concurrent: usize,
    /// Max queued+running jobs per tenant; a submit over the quota is
    /// rejected at the door.
    pub tenant_quota: usize,
    /// Accelerator-share seed for each job's split plan (the dynamic
    /// scheduler rebalances from there).
    pub accel_frac: f64,
    /// Periodic checkpoint interval in committed chunks.
    pub interval_chunks: u64,
    /// Fingerprint-named per-job checkpoints live here; `None` disables
    /// checkpointing (cancelled jobs then restart from scratch).
    pub checkpoint_dir: Option<PathBuf>,
    /// Per-job query-tagged JSONL trace exports (`job-<id>.jsonl`)
    /// live here; `None` disables tracing.
    pub trace_dir: Option<PathBuf>,
    /// Dump the job registry as JSONL here on shutdown.
    pub registry_out: Option<PathBuf>,
    /// Hits streamed per job when the submit carries no `top`.
    pub default_top: usize,
    /// Gather window: after the first submit arrives, the collector
    /// waits this long so concurrent submits coalesce into the same
    /// shared region before it takes a batch.
    pub batch_window_ms: u64,
    /// Ops-log threshold (structured JSON lines, one per lifecycle
    /// transition).
    pub log_level: LogLevel,
    /// Ops-log destination; stderr when `None`.
    pub log_file: Option<PathBuf>,
    /// Jobs slower than this (submit→terminal) are counted, warn-logged
    /// and — when `trace_dir` is set — get their merged timeline dumped
    /// as `slow-job-<id>.jsonl`. `None` disables the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Periodically dump the daemon-lifetime Prometheus snapshot here
    /// (atomic tmp+rename), plus once at shutdown.
    pub metrics_file: Option<PathBuf>,
    /// Interval between `metrics_file` dumps.
    pub metrics_interval_ms: u64,
    /// Content digest of the resident snapshot when it was verified at
    /// load; surfaces through the health probe.
    pub snapshot_digest: Option<u64>,
    /// A connection that has not completed its request line within this
    /// deadline is evicted (counted in the SLO counters) — a half-line
    /// stalled client must not pin a thread and fd until shutdown.
    pub request_timeout_ms: u64,
    /// Set when this daemon serves one shard of a sharded database:
    /// hit ids on the wire become global (`base +` in-shard id) and the
    /// obs plane labels every metric with the shard index.
    pub shard: Option<ShardRole>,
}

impl ServeConfig {
    /// Defaults: 2 queries per batch, tenant quota 4, 55 % plan seed,
    /// checkpoint every 4 chunks, top-10, 3 ms gather window, no
    /// artifact outputs.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig::at(Endpoint::Unix(socket.into()))
    }

    /// Defaults with an explicit listen endpoint (unix or TCP).
    pub fn at(listen: Endpoint) -> Self {
        ServeConfig {
            listen,
            max_concurrent: 2,
            tenant_quota: 4,
            accel_frac: 0.55,
            interval_chunks: 4,
            checkpoint_dir: None,
            trace_dir: None,
            registry_out: None,
            default_top: 10,
            batch_window_ms: 3,
            log_level: LogLevel::Off,
            log_file: None,
            slow_query_ms: None,
            metrics_file: None,
            metrics_interval_ms: 1_000,
            snapshot_digest: None,
            request_timeout_ms: 10_000,
            shard: None,
        }
    }

    /// The unix socket path, when listening on one (tests and local
    /// tooling reach for the path; TCP binds have none).
    pub fn unix_socket(&self) -> Option<&Path> {
        match &self.listen {
            Endpoint::Unix(p) => Some(p),
            Endpoint::Tcp(_) => None,
        }
    }
}

/// Everything a connection handler needs, by reference. `shutdown` is
/// `'static` because per-job signals are scoped under it and outlive
/// the borrow checker's patience otherwise.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    engine: &'a HeteroEngine,
    prepared: &'a PreparedDb,
    alphabet: &'a Alphabet,
    base: &'a HeteroSearchConfig,
    config: &'a ServeConfig,
    registry: &'a Registry,
    batcher: &'a Batcher,
    obs: &'a Obs,
    shutdown: &'static DrainSignal,
}

/// Run the daemon until `shutdown` (or a parent of it) is requested.
/// Blocks the calling thread; spawns one thread per connection inside a
/// scope, so every job has drained before this returns. Returns the
/// final registry counts.
pub fn serve(
    engine: &HeteroEngine,
    prepared: &PreparedDb,
    alphabet: &Alphabet,
    base: &HeteroSearchConfig,
    config: &ServeConfig,
    shutdown: &'static DrainSignal,
) -> Result<StatsSnapshot, ServeError> {
    // `Listener::bind` removes a stale unix socket from a crashed
    // daemon but refuses to evict a live one (someone answers on it).
    let listener = Listener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let obs = Arc::new(Obs::new(ObsConfig {
        log_level: config.log_level,
        log_file: config.log_file.clone(),
        slow_query_ms: config.slow_query_ms,
        snapshot_digest: config.snapshot_digest,
        shard: config.shard,
    }));
    let registry = Registry::with_obs(Arc::clone(&obs));
    let batcher = Batcher::new();
    let ctx = Ctx {
        engine,
        prepared,
        alphabet,
        base,
        config,
        registry: &registry,
        batcher: &batcher,
        obs: obs.as_ref(),
        shutdown,
    };
    std::thread::scope(|s| {
        // The one region runner: groups queued submits into shared
        // batches until shutdown empties the queue.
        obs.set_collector_alive(true);
        s.spawn(move || {
            collector_loop(ctx);
            ctx.obs.set_collector_alive(false);
        });
        if ctx.config.metrics_file.is_some() {
            s.spawn(move || metrics_file_loop(ctx));
        }
        // The engine and snapshot are resident and the collector is up:
        // the readiness probe flips true here and nowhere earlier.
        obs.set_ready(true);
        obs.log(
            LogLevel::Info,
            "daemon_ready",
            &format!(
                ",\"socket\":\"{}\",\"snapshot_verified\":{}",
                json::escape(&config.listen.to_string()),
                config.snapshot_digest.is_some()
            ),
        );
        // Keep accepting while draining so health/metrics probes can
        // watch the drain itself; stop once nothing is in flight.
        loop {
            if shutdown.is_requested() {
                if !obs.is_draining() {
                    obs.set_draining(true);
                    obs.log(LogLevel::Warn, "daemon_draining", "");
                }
                if !registry.has_inflight() {
                    break;
                }
            }
            match listener.accept() {
                Ok(stream) => {
                    let _ = stream.set_nonblocking(false);
                    s.spawn(move || {
                        // Connection errors (peer hung up mid-stream)
                        // affect that connection only.
                        let _ = handle_connection(ctx, stream);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Scope exit joins every connection thread: in-flight jobs see
        // the shutdown through their scoped drains and checkpoint out.
    });
    obs.set_ready(false);
    let stats = registry.stats();
    obs.log(
        LogLevel::Info,
        "daemon_stopped",
        &format!(
            ",\"done_total\":{},\"failed_total\":{},\"cancelled_total\":{},\"rejected\":{}",
            stats.done_total, stats.failed_total, stats.cancelled_total, stats.rejected
        ),
    );
    if let Some(path) = &config.registry_out {
        std::fs::write(path, registry.dump_jsonl())?;
    }
    if let Some(path) = config.unix_socket() {
        let _ = std::fs::remove_file(path);
    }
    Ok(stats)
}

/// Periodically dump the daemon-lifetime scrape to `metrics_file`
/// (atomic tmp+rename so a scraper never reads a torn file), plus one
/// final dump after the collector exits so the artifact reflects the
/// completed session.
fn metrics_file_loop(ctx: Ctx<'_>) {
    let Some(path) = &ctx.config.metrics_file else {
        return;
    };
    let interval = Duration::from_millis(ctx.config.metrics_interval_ms.max(50));
    let mut last = std::time::Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let done = ctx.shutdown.is_requested() && !ctx.obs.is_collector_alive();
        if done || last.elapsed() >= interval {
            let stats = ctx.registry.stats();
            let text = ctx.obs.prometheus(&stats, ctx.config.max_concurrent);
            let tmp = path.with_extension("prom.tmp");
            if std::fs::write(&tmp, text).is_ok() {
                let _ = std::fs::rename(&tmp, path);
            }
            last = std::time::Instant::now();
        }
        if done {
            return;
        }
    }
}

fn handle_connection(ctx: Ctx<'_>, stream: Stream) -> io::Result<()> {
    // A silent client must not wedge shutdown: `serve`'s scoped join
    // waits on this thread, so the request read polls the shutdown
    // signal on a short timeout instead of blocking forever.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    // Overall request deadline: a client that sends half a line and
    // stalls would otherwise pin this thread and its fd until daemon
    // shutdown. Crossing it evicts the connection (an SLO counter, not
    // an error — the daemon is healthy, the client is not).
    let deadline =
        std::time::Instant::now() + Duration::from_millis(ctx.config.request_timeout_ms.max(1));
    loop {
        // A timeout mid-line leaves the partial read in `line`; looping
        // with the same buffer stitches the rest on.
        match reader.read_line(&mut line) {
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.is_requested() {
                    return Ok(()); // daemon draining: drop the idle connection
                }
                if std::time::Instant::now() >= deadline {
                    ctx.obs.on_connection_evicted();
                    ctx.obs.log(
                        LogLevel::Warn,
                        "connection_evicted",
                        &format!(
                            ",\"deadline_ms\":{},\"partial_bytes\":{}",
                            ctx.config.request_timeout_ms,
                            line.len()
                        ),
                    );
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(None)?;
    let line = line.trim_end().to_string();
    let mut w = BufWriter::new(stream);
    match json::field_str(&line, "op").as_deref() {
        Some("submit") => {
            if let Err(e) = op_submit(ctx, &line, &mut w) {
                // The reply stream died mid-write: count it — job state
                // was already finalised by the collector/ack path.
                ctx.obs.on_broken_pipe();
                ctx.obs.log(
                    LogLevel::Warn,
                    "broken_pipe",
                    &format!(",\"error\":\"{}\"", json::escape(&e.to_string())),
                );
                return Err(e);
            }
        }
        Some("metrics") => {
            let stats = ctx.registry.stats();
            w.write_all(
                ctx.obs
                    .prometheus(&stats, ctx.config.max_concurrent)
                    .as_bytes(),
            )?;
        }
        Some("health") => {
            let stats = ctx.registry.stats();
            writeln!(
                w,
                "{}",
                ctx.obs
                    .health_json(&stats, ctx.config.max_concurrent, ctx.batcher.depth())
            )?;
        }
        Some("status") => {
            match json::field_u64(&line, "job").and_then(|id| ctx.registry.status(id)) {
                Some(rec) => writeln!(w, "{}", rec.to_json())?,
                None => fail(&mut w, "no such job")?,
            }
        }
        Some("cancel") => match json::field_u64(&line, "job") {
            Some(id) => match ctx.registry.cancel(id) {
                Ok(state) => writeln!(
                    w,
                    "{{\"ok\":true,\"job\":{id},\"was\":\"{}\"}}",
                    state.name()
                )?,
                Err(e) => fail(&mut w, &e)?,
            },
            None => fail(&mut w, "cancel needs a job id")?,
        },
        Some("stats") => writeln!(w, "{}", ctx.registry.stats().to_json())?,
        Some("shutdown") => {
            ctx.shutdown.request();
            writeln!(w, "{{\"ok\":true,\"state\":\"draining\"}}")?;
        }
        _ => fail(&mut w, "unknown op")?,
    }
    w.flush()
}

fn fail<W: Write>(w: &mut W, msg: &str) -> io::Result<()> {
    writeln!(w, "{{\"ok\":false,\"error\":\"{}\"}}", json::escape(msg))
}

fn op_submit<W: Write>(ctx: Ctx<'_>, line: &str, w: &mut W) -> io::Result<()> {
    let Some(fasta) = json::field_str(line, "query") else {
        return fail(w, "submit needs a query");
    };
    let tenant = json::field_str(line, "tenant").unwrap_or_else(|| "anon".to_string());
    let top = json::field_u64(line, "top").unwrap_or(ctx.config.default_top as u64) as usize;
    let query = match parse_query(&fasta, ctx.alphabet) {
        Ok(q) => q,
        Err(e) => return fail(w, &e),
    };
    let drill = match json::field_str(line, "drill")
        .as_deref()
        .map(parse_delay_drill)
    {
        None => None,
        Some(Ok(spec)) => Some(spec),
        Some(Err(e)) => return fail(w, &e),
    };
    let drain = Arc::new(DrainSignal::scoped(ctx.shutdown));
    let (id, drain) = match ctx.registry.submit(
        &tenant,
        query.residues.len(),
        ctx.config.tenant_quota,
        drain,
    ) {
        Ok(v) => v,
        Err(e) => return fail(w, &e),
    };
    // Ack immediately so the submitter learns its job id (and can
    // cancel) before the queue wait. From here on every error path must
    // finish the job — an early return would leave it Queued forever,
    // holding tenant quota for a client that is already gone.
    let ack = (|| -> io::Result<()> {
        writeln!(w, "{{\"ok\":true,\"job\":{id},\"state\":\"queued\"}}")?;
        w.flush()
    })();
    if let Err(e) = ack {
        ctx.registry.finish(
            id,
            JobState::Failed,
            0,
            0,
            Some(format!("client gone before ack: {e}")),
        );
        return Err(e);
    }
    ctx.registry.mark_admitted(id);
    let (reply_tx, reply_rx) = mpsc::channel();
    let parked = ctx.batcher.enqueue(PendingJob {
        id,
        residues: query.residues,
        top,
        drill,
        drain,
        reply: reply_tx,
    });
    if !parked {
        // The collector already closed (daemon draining): nobody will
        // ever run or reply to this job.
        ctx.registry.finish(id, JobState::Cancelled, 0, 0, None);
        writeln!(
            w,
            "{{\"job\":{id},\"state\":\"cancelled\",\"hits\":0,\"resumes\":0,\"batch\":0}}"
        )?;
        return writeln!(w, "{{\"end\":true}}");
    }
    // The collector finishes the registry record *before* replying, so
    // a client that hangs up during streaming cannot wedge the job; and
    // shutdown cancel-replies the whole queue, so this recv always ends.
    let reply = match reply_rx.recv() {
        Ok(r) => r,
        Err(_) => {
            let msg = "batch collector died".to_string();
            ctx.registry
                .finish(id, JobState::Failed, 0, 0, Some(msg.clone()));
            JobReply::Failed { error: msg }
        }
    };
    match reply {
        JobReply::Done {
            hits,
            resumes,
            batch,
        } => {
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"done\",\"hits\":{},\"resumes\":{resumes},\"batch\":{batch}}}",
                hits.len()
            )?;
            if !hits.is_empty() {
                ctx.registry.record_first_hit(id);
            }
            for (rank, (score, db_id, header)) in hits.iter().enumerate() {
                writeln!(
                    w,
                    "{{\"rank\":{},\"score\":{score},\"id\":{db_id},\"header\":\"{}\"}}",
                    rank + 1,
                    json::escape(header)
                )?;
            }
        }
        JobReply::Cancelled { resumes, batch } => {
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"cancelled\",\"hits\":0,\"resumes\":{resumes},\"batch\":{batch}}}"
            )?;
        }
        JobReply::Failed { error } => {
            writeln!(
                w,
                "{{\"job\":{id},\"state\":\"failed\",\"error\":\"{}\"}}",
                json::escape(&error)
            )?;
        }
    }
    writeln!(w, "{{\"end\":true}}")
}

/// The region runner. Lives on one thread inside `serve`'s scope:
/// repeatedly collects a batch of parked submits and runs them as one
/// shared dual-pool region, until shutdown drains the queue.
fn collector_loop(ctx: Ctx<'_>) {
    let window = Duration::from_millis(ctx.config.batch_window_ms);
    while let Some(jobs) = ctx
        .batcher
        .collect(ctx.config.max_concurrent, window, ctx.shutdown)
    {
        run_batch_jobs(ctx, jobs);
    }
}

/// Run one shared region and demux per-query outcomes back to their
/// connections. Registry transitions happen here (mark_running before
/// the region, finish before each reply) so connection threads never
/// own job state after the ack.
fn run_batch_jobs(ctx: Ctx<'_>, jobs: Vec<PendingJob>) {
    // Every collected job left the gather window together — stamp the
    // phase (and the region size) before the cancel filter so even a
    // cancelled-while-parked job's record shows how long it waited.
    let gathered = jobs.len();
    for job in &jobs {
        ctx.registry.mark_gathered(job.id, gathered);
    }
    // Jobs whose drain fired while parked (client cancel, shutdown)
    // never enter the region.
    let mut live: Vec<PendingJob> = Vec::new();
    for job in jobs {
        if ctx.registry.mark_running(job.id) {
            live.push(job);
        } else {
            ctx.registry.finish(job.id, JobState::Cancelled, 0, 0, None);
            let _ = job.reply.send(JobReply::Cancelled {
                resumes: 0,
                batch: 0,
            });
        }
    }
    if live.is_empty() {
        return;
    }
    let batch = live.len();
    ctx.obs.on_region(batch);
    ctx.obs.log(
        LogLevel::Debug,
        "region_started",
        &format!(",\"batch\":{batch}"),
    );
    // Per-query tracers: fresh epoch at region start, job id as the
    // query tag — exports stay separable even though the region is
    // shared. The region's own trace stays off; the per-query spans
    // carry the story.
    let tracers: Vec<sw_core::TraceConfig> = live
        .iter()
        .map(|j| {
            TraceConfig {
                level: if ctx.config.trace_dir.is_some() {
                    sw_trace::TraceLevel::Full
                } else {
                    sw_trace::TraceLevel::Off
                },
                ..TraceConfig::default()
            }
            .for_query(j.id)
        })
        .collect();
    let tracers: Vec<sw_trace::Tracer> = tracers.iter().map(|t| t.tracer()).collect();
    // The plan seeds from the longest member: lane batching means every
    // query shares the same device split, rebalanced dynamically.
    let plan_len = live.iter().map(|j| j.residues.len()).max().unwrap_or(1);
    let plan = ctx
        .engine
        .plan_split(ctx.prepared, plan_len, ctx.config.accel_frac);
    let cfg = *ctx.base;
    // One injector per region: the first parked drill arms it (the
    // daemon only accepts the benign delay drill).
    let injector = match live.iter().find_map(|j| j.drill) {
        Some(spec) => FaultInjector::new(FaultPlan::single(spec)),
        None => FaultInjector::none(),
    };
    let queries: Vec<BatchQuery<'_>> = live
        .iter()
        .zip(&tracers)
        .map(|(j, tr)| BatchQuery {
            residues: &j.residues,
            id: j.id,
            cancel: Some(j.drain.as_ref()),
            tracer: Some(tr),
        })
        .collect();
    let dopts = DurableOptions {
        checkpoint_path: None,
        checkpoint_dir: ctx.config.checkpoint_dir.as_deref(),
        interval_chunks: ctx.config.interval_chunks,
        drain: Some(ctx.shutdown),
        resume: true,
    };
    let out =
        ctx.engine
            .search_many_resumable(&queries, ctx.prepared, &plan, &cfg, &injector, &dopts);
    match out {
        Err(e) => {
            // Region errors are region-wide: every member fails.
            let msg = e.to_string();
            for j in live {
                ctx.registry
                    .finish(j.id, JobState::Failed, 0, 0, Some(msg.clone()));
                let _ = j.reply.send(JobReply::Failed { error: msg.clone() });
            }
        }
        Ok(out) => {
            ctx.obs.on_checkpoint_writes(out.checkpoints_written);
            for ((j, q), tracer) in live.into_iter().zip(out.queries).zip(tracers) {
                match q.results {
                    Some(results) => {
                        let timeline = tracer.timeline();
                        if let Some(dir) = &ctx.config.trace_dir {
                            // Trace export is best-effort: a full disk
                            // must not fail a finished search.
                            let _ = std::fs::create_dir_all(dir);
                            let _ = std::fs::write(
                                dir.join(format!("job-{}.jsonl", j.id)),
                                sw_trace::export::jsonl(&timeline),
                            );
                        }
                        // Cells = query residues × db residues, the same
                        // product the GCUPS bench reports.
                        let cells = j.residues.len() as u64 * ctx.prepared.stats.total_residues;
                        ctx.obs.on_cells(cells, ctx.obs.now_us());
                        if results.degraded {
                            ctx.obs.on_degraded();
                        }
                        // Report ids globally: a shard worker's local id
                        // plus its base IS the parent database index, so
                        // the coordinator's merge tie-break matches the
                        // unsharded run.
                        let base = ctx.config.shard.map_or(0, |s| s.base);
                        let hits: Vec<(i64, u64, String)> = results
                            .top(j.top)
                            .iter()
                            .map(|h| {
                                (
                                    h.score,
                                    base + h.id.0 as u64,
                                    ctx.prepared.sorted.db().header(h.id).to_string(),
                                )
                            })
                            .collect();
                        let finished =
                            ctx.registry
                                .finish(j.id, JobState::Done, hits.len(), q.resumes, None);
                        if let Some((rec, true)) = finished {
                            slow_query_dump(ctx, &rec, timeline);
                        }
                        let _ = j.reply.send(JobReply::Done {
                            hits,
                            resumes: q.resumes,
                            batch,
                        });
                    }
                    None => {
                        ctx.registry
                            .finish(j.id, JobState::Cancelled, 0, q.resumes, None);
                        let _ = j.reply.send(JobReply::Cancelled {
                            resumes: q.resumes,
                            batch,
                        });
                    }
                }
            }
            ctx.obs.log(
                LogLevel::Debug,
                "region_finished",
                &format!(",\"batch\":{batch}"),
            );
        }
    }
}

/// The slow-query log: a job crossed `--slow-query-ms`, so dump its
/// per-query timeline rebased onto the daemon clock (epoch-relative
/// stamps shifted by the job's region-start stamp) as
/// `slow-job-<id>.jsonl`, next to the regular per-job traces. Without a
/// `--trace-dir` the event is still counted and warn-logged — there is
/// just nowhere to put the timeline.
fn slow_query_dump(ctx: Ctx<'_>, rec: &crate::registry::JobRecord, timeline: sw_trace::Timeline) {
    let Some(dir) = &ctx.config.trace_dir else {
        return;
    };
    let offset = rec.phases.started_us.unwrap_or(0);
    let merged = sw_trace::Timeline::merge_with_offsets([(timeline, offset)]);
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("slow-job-{}.jsonl", rec.id));
    let _ = std::fs::write(&path, sw_trace::export::jsonl(&merged));
    ctx.obs.log(
        LogLevel::Warn,
        "slow_query_dumped",
        &format!(
            ",\"job\":{},\"path\":\"{}\"",
            rec.id,
            json::escape(&path.display().to_string())
        ),
    );
}

fn parse_query(fasta: &str, alphabet: &Alphabet) -> Result<sw_seq::EncodedSeq, String> {
    let seqs = sw_seq::fasta::read_encoded(io::Cursor::new(fasta.as_bytes()), alphabet)
        .map_err(|e| format!("query FASTA: {e}"))?;
    seqs.into_iter()
        .next()
        .ok_or_else(|| "query FASTA holds no sequences".to_string())
}

/// The daemon accepts only the benign drill: `delay@CHUNK:MS` stalls
/// one accelerator chunk (deterministic timing for tests). Kill/wedge
/// drills stay CLI-only — a shared daemon is no place for them.
fn parse_delay_drill(s: &str) -> Result<FaultSpec, String> {
    let bad = || format!("bad drill '{s}': the daemon accepts delay@CHUNK:MS only");
    let rest = s.strip_prefix("delay@").ok_or_else(bad)?;
    let (chunk, ms) = rest.split_once(':').ok_or_else(bad)?;
    Ok(FaultSpec {
        device: DEVICE_ACCEL,
        chunk: chunk.parse().map_err(|_| bad())?,
        kind: FaultKind::Delay(Duration::from_millis(ms.parse().map_err(|_| bad())?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::SearchEngine;
    use sw_seq::gen::{generate_database, DbSpec};

    /// A client that hung up before the ack: every write fails.
    struct BrokenPipe;
    impl Write for BrokenPipe {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
        }
    }

    #[test]
    fn failed_ack_write_finishes_job_and_releases_quota() {
        static ACK_SHUTDOWN: DrainSignal = DrainSignal::new();
        let alphabet = Alphabet::protein();
        let db = generate_database(&DbSpec {
            n_seqs: 4,
            mean_len: 40.0,
            max_len: 64,
            seed: 7,
        });
        let prepared = PreparedDb::prepare(db, 4, &alphabet);
        let engine = HeteroEngine::new(SearchEngine::paper_default());
        let base = HeteroSearchConfig::best(1, 1);
        let mut config = ServeConfig::new("/tmp/unused-ack-test.sock");
        config.tenant_quota = 1;
        let registry = Registry::new();
        let batcher = Batcher::new();
        let ctx = Ctx {
            engine: &engine,
            prepared: &prepared,
            alphabet: &alphabet,
            base: &base,
            config: &config,
            registry: &registry,
            batcher: &batcher,
            obs: registry.obs().as_ref(),
            shutdown: &ACK_SHUTDOWN,
        };
        let req = crate::client::submit_request("acme", ">q\nMKVLAT\n", 5, None);
        let err = op_submit(ctx, &req, &mut BrokenPipe).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The job must not be stuck Queued: it failed, released its
        // quota, and charged no run slot.
        let rec = registry.status(1).expect("job was submitted");
        assert_eq!(rec.state, JobState::Failed, "finished on the error path");
        assert_eq!(registry.stats().running, 0);
        registry
            .submit("acme", 6, 1, Arc::new(DrainSignal::scoped(&ACK_SHUTDOWN)))
            .expect("quota released after the failed ack");
    }

    #[test]
    fn drill_parser_accepts_delay_only() {
        let spec = parse_delay_drill("delay@3:250").unwrap();
        assert_eq!(spec.device, DEVICE_ACCEL);
        assert_eq!(spec.chunk, 3);
        assert_eq!(spec.kind, FaultKind::Delay(Duration::from_millis(250)));
        assert!(parse_delay_drill("kill@3").is_err());
        assert!(parse_delay_drill("delay@3").is_err());
        assert!(parse_delay_drill("delay@x:9").is_err());
    }

    #[test]
    fn query_parser_rejects_garbage() {
        let a = Alphabet::protein();
        assert!(parse_query(">q\nMKVL\n", &a).unwrap().residues.len() == 4);
        assert!(parse_query("", &a).is_err());
    }
}
