//! The shard coordinator: fan one query out over shard-worker daemons,
//! recover dead or wedged shards, and merge per-shard top-K streams
//! into the unsharded run's exact hit list.
//!
//! ## Lease at shard granularity
//!
//! The unit of work here is one *shard*, not one chunk — but the
//! recovery algorithm is the same one the dual-pool executor runs over
//! chunk ranges, reusing [`sw_sched::RequeueQueue`] directly: a shard
//! whose worker cannot be reached, stalls past the lease deadline, or
//! returns a broken stream is pushed back with an incremented attempt
//! count and picked up (LIFO) by any coordinator thread. Before a
//! retry the caller-supplied `respawn` launcher is invoked so a
//! SIGKILL'd worker comes back as a fresh process; the worker then
//! resumes from its own SWCKPT1 checkpoint, whose fingerprint embeds
//! the per-shard db digest — shard checkpoints cannot collide even in
//! a shared checkpoint directory. A per-shard attempt cap and a global
//! failure budget bound the retry storm, mirroring `RecoveryConfig`
//! semantics.
//!
//! ## Byte-identical merge
//!
//! Workers report hit ids *globally* (shard base + in-shard index), and
//! shards partition the id space, so sorting the union by the engine's
//! own tie-break — score descending, global id ascending
//! ([`sw_core::merge_top_k`]) — reproduces the unsharded hit list
//! byte-for-byte, equal-score ties included.

use crate::client::{
    self, health_request, parse_submit_response, shutdown_request, submit_request, HitLine,
};
use crate::json;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use sw_sched::RequeueQueue;

/// One shard worker the coordinator talks to.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Shard index (also the task id in the requeue queue).
    pub index: u64,
    /// The worker's unix socket.
    pub socket: PathBuf,
    /// When set, the worker's health probe must report exactly this
    /// snapshot digest before a submit goes out — a worker serving the
    /// wrong shard is a fatal wiring error, not a retry.
    pub expect_digest: Option<u64>,
}

/// Coordinator knobs. Defaults mirror the executor's recovery
/// temperament: a few attempts per shard, a small global budget.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Hits to request from each shard and to keep after the merge.
    pub top: usize,
    /// Tenant name stamped on every per-shard submit.
    pub tenant: String,
    /// Optional fault drill forwarded to every shard worker.
    pub drill: Option<String>,
    /// Max executions of one shard before the search fails.
    pub max_attempts: u32,
    /// Total shard failures tolerated across the whole search.
    pub failure_budget: u32,
    /// How long to wait for a (re)spawned worker's socket to answer.
    pub connect_wait_ms: u64,
    /// Lease deadline for one shard submit: a worker that accepts the
    /// query but never finishes streaming within this window is treated
    /// as wedged and its shard is requeued.
    pub lease_timeout_ms: u64,
    /// Backoff before a retry attempt (scaled by the attempt count).
    pub backoff_ms: u64,
}

impl CoordConfig {
    /// Defaults for `top` hits under tenant `coord`.
    pub fn new(top: usize) -> Self {
        CoordConfig {
            top,
            tenant: "coord".into(),
            drill: None,
            max_attempts: 3,
            failure_budget: 4,
            connect_wait_ms: 5_000,
            lease_timeout_ms: 120_000,
            backoff_ms: 50,
        }
    }
}

/// Why a sharded search gave up.
#[derive(Debug)]
pub enum CoordError {
    /// One shard exhausted its per-shard attempt cap.
    ShardFailed {
        /// The shard that kept failing.
        index: u64,
        /// Executions attempted.
        attempts: u32,
        /// Last failure observed.
        last: String,
    },
    /// The global failure budget ran out before every shard finished.
    BudgetExhausted {
        /// Failures counted across all shards.
        failures: u32,
    },
    /// A worker answered with the wrong identity (shard index or db
    /// digest mismatch) — wiring error, never retried.
    WrongShard {
        /// The shard the coordinator wanted.
        index: u64,
        /// What the worker's health probe reported.
        detail: String,
    },
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::ShardFailed {
                index,
                attempts,
                last,
            } => write!(f, "shard {index} failed after {attempts} attempts: {last}"),
            CoordError::BudgetExhausted { failures } => {
                write!(
                    f,
                    "failure budget exhausted after {failures} shard failures"
                )
            }
            CoordError::WrongShard { index, detail } => {
                write!(f, "worker for shard {index} has wrong identity: {detail}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Per-shard outcome accounting.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Executions this shard needed (1 = clean first pass).
    pub attempts: u32,
    /// Checkpoint resumes the final successful run stitched together.
    pub resumes: u64,
    /// Hits this shard contributed before the merge.
    pub hits: usize,
}

/// The merged result of a sharded search.
#[derive(Debug, Clone)]
pub struct CoordOutcome {
    /// Global top-K, merged with the unsharded tie-break.
    pub hits: Vec<HitLine>,
    /// Per-shard accounting, indexed by shard.
    pub reports: Vec<ShardReport>,
    /// Shard executions requeued after a failure.
    pub requeues: u64,
}

enum AttemptError {
    /// Transient: respawn + requeue (connect refused, wedged lease,
    /// broken stream, failed job).
    Retry(String),
    /// Permanent: wrong worker identity.
    Fatal(CoordError),
}

struct CoordState {
    queue: RequeueQueue,
    inflight: usize,
    done: usize,
    failures: u32,
    requeues: u64,
    fatal: Option<CoordError>,
    results: Vec<Option<(Vec<HitLine>, ShardReport)>>,
}

/// Run one query over every shard and merge. `respawn` is invoked
/// before each retry of a shard (the worker may be gone entirely); it
/// should (re)launch the worker process for that shard and return once
/// the launch is underway — the coordinator itself waits for the
/// socket. Blocks until every shard reports or the search fails.
pub fn search_sharded(
    shards: &[ShardSpec],
    query_fasta: &str,
    cfg: &CoordConfig,
    respawn: &(dyn Fn(&ShardSpec) -> Result<(), String> + Sync),
) -> Result<CoordOutcome, CoordError> {
    assert!(!shards.is_empty(), "no shards to search");
    let mut queue = RequeueQueue::new();
    // Seed in reverse so LIFO pops shard 0 first — cosmetic, but makes
    // single-threaded traces read naturally.
    for spec in shards.iter().rev() {
        queue.push_task(spec.index as usize, 0);
    }
    let state = Mutex::new(CoordState {
        queue,
        inflight: 0,
        done: 0,
        failures: 0,
        requeues: 0,
        fatal: None,
        results: vec![None; shards.len()],
    });
    let wake = Condvar::new();
    let n = shards.len();

    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| loop {
                let (task, attempts) = {
                    let mut g = state.lock().unwrap();
                    loop {
                        if g.fatal.is_some() || g.done == n {
                            return;
                        }
                        if let Some(popped) = g.queue.pop_task() {
                            g.inflight += 1;
                            break popped;
                        }
                        if g.inflight == 0 {
                            return; // nothing queued, nothing running
                        }
                        let (guard, _) = wake.wait_timeout(g, Duration::from_millis(20)).unwrap();
                        g = guard;
                    }
                };
                let spec = &shards[task];
                let outcome = run_shard_attempt(spec, query_fasta, cfg, attempts, respawn);
                let mut g = state.lock().unwrap();
                g.inflight -= 1;
                match outcome {
                    Ok((hits, mut report)) => {
                        report.attempts = attempts + 1;
                        g.results[task] = Some((hits, report));
                        g.done += 1;
                    }
                    Err(AttemptError::Fatal(e)) => {
                        g.fatal.get_or_insert(e);
                    }
                    Err(AttemptError::Retry(e)) => {
                        g.failures += 1;
                        let failures = g.failures;
                        if failures > cfg.failure_budget {
                            g.fatal
                                .get_or_insert(CoordError::BudgetExhausted { failures });
                        } else if attempts + 1 >= cfg.max_attempts {
                            g.fatal.get_or_insert(CoordError::ShardFailed {
                                index: spec.index,
                                attempts: attempts + 1,
                                last: e,
                            });
                        } else {
                            g.queue.push_task(task, attempts + 1);
                            g.requeues += 1;
                        }
                    }
                }
                drop(g);
                wake.notify_all();
            });
        }
    });

    let mut g = state.into_inner().unwrap();
    if let Some(e) = g.fatal.take() {
        return Err(e);
    }
    let mut reports = Vec::with_capacity(n);
    let mut per_shard = Vec::with_capacity(n);
    for slot in g.results.drain(..) {
        let (hits, report) = slot.expect("no fatal error means every shard reported");
        per_shard.push(hits);
        reports.push(report);
    }
    Ok(CoordOutcome {
        hits: merge_hits(per_shard, cfg.top),
        reports,
        requeues: g.requeues,
    })
}

/// Merge per-shard ranked hit streams into the global top `k` with the
/// single-process tie-break (score descending, global id ascending) —
/// see [`sw_core::merge_top_k`] for the contract over `Hit` values;
/// this is the same order over wire hits, re-ranked 1-based.
pub fn merge_hits(per_shard: Vec<Vec<HitLine>>, k: usize) -> Vec<HitLine> {
    let mut all: Vec<HitLine> = per_shard.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    all.truncate(k);
    for (i, h) in all.iter_mut().enumerate() {
        h.rank = i as u64 + 1;
    }
    all
}

fn run_shard_attempt(
    spec: &ShardSpec,
    query_fasta: &str,
    cfg: &CoordConfig,
    attempts: u32,
    respawn: &(dyn Fn(&ShardSpec) -> Result<(), String> + Sync),
) -> Result<(Vec<HitLine>, ShardReport), AttemptError> {
    if attempts > 0 {
        // The worker may be dead (that is usually why we are here):
        // bring it back before the backoff, resume does the rest.
        std::thread::sleep(Duration::from_millis(cfg.backoff_ms * attempts as u64));
        respawn(spec).map_err(AttemptError::Retry)?;
    }
    wait_for_socket(&spec.socket, cfg.connect_wait_ms).map_err(AttemptError::Retry)?;

    // Identity check: never submit to a worker serving the wrong shard.
    let deadline = Instant::now() + Duration::from_millis(cfg.lease_timeout_ms);
    let health = request_with_deadline(&spec.socket, &health_request(), deadline)
        .map_err(|e| AttemptError::Retry(format!("health probe failed: {e}")))?;
    let health = health
        .first()
        .cloned()
        .ok_or_else(|| AttemptError::Retry("empty health reply".into()))?;
    match json::field_u64(&health, "shard") {
        Some(i) if i == spec.index => {}
        other => {
            return Err(AttemptError::Fatal(CoordError::WrongShard {
                index: spec.index,
                detail: format!("health reports shard {other:?}"),
            }))
        }
    }
    if let Some(want) = spec.expect_digest {
        let got = json::field_str(&health, "snapshot_digest");
        if got.as_deref() != Some(format!("{want:016x}").as_str()) {
            return Err(AttemptError::Fatal(CoordError::WrongShard {
                index: spec.index,
                detail: format!("db digest {got:?}, want {want:016x}"),
            }));
        }
    }

    let req = submit_request(&cfg.tenant, query_fasta, cfg.top, cfg.drill.as_deref());
    let lines = request_with_deadline(&spec.socket, &req, deadline)
        .map_err(|e| AttemptError::Retry(format!("submit failed: {e}")))?;
    let outcome = parse_submit_response(&lines).map_err(AttemptError::Retry)?;
    if outcome.state != "done" {
        return Err(AttemptError::Retry(format!(
            "job {} ended {}: {}",
            outcome.job,
            outcome.state,
            outcome.error.unwrap_or_default()
        )));
    }
    let report = ShardReport {
        attempts: 0, // stamped by the caller
        resumes: outcome.resumes,
        hits: outcome.hits.len(),
    };
    Ok((outcome.hits, report))
}

/// Wait until the worker's socket accepts a connection.
fn wait_for_socket(socket: &Path, wait_ms: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    loop {
        match UnixStream::connect(socket) {
            Ok(_) => return Ok(()),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!(
                    "worker socket {} not answering after {wait_ms} ms: {e}",
                    socket.display()
                ))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Like [`client::request`] but with an overall deadline — the
/// coordinator's lease. A worker that stalls mid-stream times out here
/// and its shard is requeued, exactly like a wedged executor worker.
fn request_with_deadline(socket: &Path, line: &str, deadline: Instant) -> io::Result<Vec<String>> {
    let mut stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(lines),
            Ok(_) => lines.push(buf.trim_end().to_string()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "shard lease expired mid-stream",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Politely shut a worker down (used by launchers that own the worker
/// processes they spawned). Errors are reported, not fatal — the
/// caller usually also holds the child handle and can wait/kill.
pub fn shutdown_worker(socket: &Path) -> io::Result<()> {
    client::request(socket, &shutdown_request()).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(score: i64, id: u64) -> HitLine {
        HitLine {
            rank: 0,
            score,
            id,
            header: format!("sp|{id}|h"),
        }
    }

    #[test]
    fn merge_reproduces_single_process_tie_break() {
        // Equal scores straddling the shard boundary: global id breaks
        // the tie, regardless of which shard contributed which hit.
        let shard0 = vec![hit(50, 2), hit(40, 0), hit(40, 1)];
        let shard1 = vec![hit(60, 7), hit(40, 3), hit(12, 9)];
        let merged = merge_hits(vec![shard0, shard1], 5);
        let key: Vec<(i64, u64, u64)> = merged.iter().map(|h| (h.score, h.id, h.rank)).collect();
        assert_eq!(
            key,
            vec![(60, 7, 1), (50, 2, 2), (40, 0, 3), (40, 1, 4), (40, 3, 5)]
        );
    }

    #[test]
    fn merge_truncates_and_reranks() {
        let merged = merge_hits(vec![vec![hit(1, 0)], vec![hit(3, 5), hit(2, 4)]], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].rank, 1);
        assert_eq!(merged[0].id, 5);
        assert_eq!(merged[1].rank, 2);
        assert_eq!(merged[1].id, 4);
    }

    #[test]
    fn budget_and_attempt_caps_stop_a_dead_shard() {
        // No worker listening anywhere: every attempt fails to connect.
        let dir = std::env::temp_dir().join(format!("sw-coord-dead-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let shards = vec![ShardSpec {
            index: 0,
            socket: dir.join("nobody.sock"),
            expect_digest: None,
        }];
        let mut cfg = CoordConfig::new(5);
        cfg.connect_wait_ms = 30;
        cfg.backoff_ms = 1;
        cfg.max_attempts = 2;
        let respawns = std::sync::atomic::AtomicU32::new(0);
        let err = search_sharded(&shards, ">q\nARN\n", &cfg, &|_| {
            respawns.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        })
        .expect_err("nothing to talk to");
        match err {
            CoordError::ShardFailed {
                index, attempts, ..
            } => {
                assert_eq!(index, 0);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(
            respawns.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "one respawn before the second (and last) attempt"
        );
    }
}
