//! The shard coordinator: fan one query out over shard-worker daemons,
//! recover dead or wedged shards, fail over to replicas, and merge
//! per-shard top-K streams into the unsharded run's exact hit list.
//!
//! ## Lease at shard granularity
//!
//! The unit of work here is one *shard*, not one chunk — but the
//! recovery algorithm is the same one the dual-pool executor runs over
//! chunk ranges, reusing [`sw_sched::RequeueQueue`] directly: a shard
//! whose worker cannot be reached, stalls past the lease deadline, or
//! returns a broken stream is pushed back with an incremented attempt
//! count and picked up (LIFO) by any coordinator thread. Before a
//! retry the caller-supplied `respawn` launcher is invoked so a
//! SIGKILL'd worker comes back as a fresh process; the worker then
//! resumes from its own SWCKPT1 checkpoint, whose fingerprint embeds
//! the per-shard db digest — shard checkpoints cannot collide even in
//! a shared checkpoint directory. A per-shard attempt cap and a global
//! failure budget bound the retry storm, mirroring `RecoveryConfig`
//! semantics.
//!
//! ## Replica failover
//!
//! A [`ShardSpec`] now carries a *list* of endpoints (primary first,
//! replicas after, from the placement plan). Attempt `a` of a shard
//! runs against `endpoints[a % len]`, so the first retry of a dead
//! primary automatically lands on its replica — a fresh lease on a
//! different worker. Where the replica shares the checkpoint directory
//! it resumes the primary's partial work; where it doesn't, it re-runs
//! the shard from scratch. Either way the merge contract is untouched:
//! every replica serves the same SWSHRD1 shard (digest-checked before
//! any submit), so per-shard top-K lists are identical no matter which
//! endpoint produced them.
//!
//! ## Crash-survivable coordination
//!
//! With a journal path configured ([`CoordDrill`]), every accepted
//! per-shard result and every requeue is recorded in an SWCRDJ1 file
//! (CRC-guarded, atomic rename — see [`crate::journal`]). A coordinator
//! that is SIGKILLed mid-search restarts with `resume`, skips committed
//! shards entirely, re-runs only the rest, and merges to bytes
//! identical to an uninterrupted run.
//!
//! ## Byte-identical merge
//!
//! Workers report hit ids *globally* (shard base + in-shard index), and
//! shards partition the id space, so sorting the union by the engine's
//! own tie-break — score descending, global id ascending
//! ([`sw_core::merge_top_k`]) — reproduces the unsharded hit list
//! byte-for-byte, equal-score ties included.

use crate::client::{
    self, health_request, parse_submit_response, shutdown_request, submit_request, HitLine,
};
use crate::journal::{fnv1a, CommittedShard, CoordJournal};
use crate::json;
use crate::transport::{Endpoint, NetTransport, RetryPolicy, ShardTransport};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use sw_sched::{NetFaultInjector, NetFaultKind, RequeueQueue};

/// Consecutive missed heartbeats before a silent stream is declared
/// black-holed and its shard lease is requeued.
const HEARTBEAT_MISSES: u32 = 3;

/// One shard worker the coordinator talks to.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Shard index (also the task id in the requeue queue).
    pub index: u64,
    /// Candidate endpoints: primary first, replicas after. Attempt `a`
    /// targets `endpoints[a % len]`, so retries walk the replica ring.
    pub endpoints: Vec<Endpoint>,
    /// When set, the worker's health probe must report exactly this
    /// snapshot digest before a submit goes out — a worker serving the
    /// wrong shard is a fatal wiring error, not a retry.
    pub expect_digest: Option<u64>,
}

impl ShardSpec {
    /// A single-endpoint unix-socket spec (the pre-replication shape).
    pub fn unix(index: u64, socket: impl Into<PathBuf>, expect_digest: Option<u64>) -> Self {
        ShardSpec {
            index,
            endpoints: vec![Endpoint::Unix(socket.into())],
            expect_digest,
        }
    }

    /// The endpoint attempt `attempt` runs against.
    pub fn endpoint_for(&self, attempt: u32) -> &Endpoint {
        &self.endpoints[attempt as usize % self.endpoints.len()]
    }
}

/// Coordinator knobs. Defaults mirror the executor's recovery
/// temperament: a few attempts per shard, a small global budget.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Hits to request from each shard and to keep after the merge.
    pub top: usize,
    /// Tenant name stamped on every per-shard submit.
    pub tenant: String,
    /// Optional fault drill forwarded to every shard worker.
    pub drill: Option<String>,
    /// Max executions of one shard before the search fails.
    pub max_attempts: u32,
    /// Total shard failures tolerated across the whole search.
    pub failure_budget: u32,
    /// How long to wait for a (re)spawned worker's socket to answer.
    pub connect_wait_ms: u64,
    /// Lease deadline for one shard submit: a worker that accepts the
    /// query but never finishes streaming within this window is treated
    /// as wedged and its shard is requeued.
    pub lease_timeout_ms: u64,
    /// Backoff before a retry attempt (scaled by the attempt count).
    pub backoff_ms: u64,
    /// Extra connect attempts per exchange (jittered exponential
    /// backoff) — absorbs a worker mid-restart without spending a
    /// shard attempt.
    pub connect_retries: u32,
    /// Base backoff for connect retries.
    pub connect_backoff_ms: u64,
    /// When a submit stream has been silent this long, probe the worker
    /// with a side-channel health heartbeat; [`HEARTBEAT_MISSES`]
    /// consecutive failed probes requeue the shard. 0 disables.
    pub heartbeat_ms: u64,
    /// Seed for connect-retry jitter (same seed → same schedule).
    pub seed: u64,
    /// Parent snapshot digest, when known — pinned in the journal so a
    /// resume against a different database is rejected. 0 = unknown.
    pub parent_digest: u64,
}

impl CoordConfig {
    /// Defaults for `top` hits under tenant `coord`.
    pub fn new(top: usize) -> Self {
        CoordConfig {
            top,
            tenant: "coord".into(),
            drill: None,
            max_attempts: 3,
            failure_budget: 4,
            connect_wait_ms: 5_000,
            lease_timeout_ms: 120_000,
            backoff_ms: 50,
            connect_retries: 2,
            connect_backoff_ms: 25,
            heartbeat_ms: 500,
            seed: 0,
            parent_digest: 0,
        }
    }
}

/// Durability and drill hooks for one sharded search: an optional
/// armed network-fault injector, and an optional SWCRDJ1 journal path
/// plus the resume flag.
#[derive(Default)]
pub struct CoordDrill<'a> {
    /// Seeded network faults to apply (None = clean wire).
    pub faults: Option<&'a NetFaultInjector>,
    /// Where to persist the coordinator journal (None = no journal).
    pub journal: Option<PathBuf>,
    /// Load the journal first and skip shards it has committed.
    pub resume: bool,
}

/// Why a sharded search gave up.
#[derive(Debug)]
pub enum CoordError {
    /// One shard exhausted its per-shard attempt cap.
    ShardFailed {
        /// The shard that kept failing.
        index: u64,
        /// Executions attempted.
        attempts: u32,
        /// Last failure observed.
        last: String,
    },
    /// The global failure budget ran out before every shard finished.
    BudgetExhausted {
        /// Failures counted across all shards.
        failures: u32,
    },
    /// A worker answered with the wrong identity (shard index or db
    /// digest mismatch) — wiring error, never retried.
    WrongShard {
        /// The shard the coordinator wanted.
        index: u64,
        /// What the worker's health probe reported.
        detail: String,
    },
    /// The coordinator journal could not be loaded, validated or
    /// written — durability was requested and cannot be honoured.
    Journal {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::ShardFailed {
                index,
                attempts,
                last,
            } => write!(f, "shard {index} failed after {attempts} attempts: {last}"),
            CoordError::BudgetExhausted { failures } => {
                write!(
                    f,
                    "failure budget exhausted after {failures} shard failures"
                )
            }
            CoordError::WrongShard { index, detail } => {
                write!(f, "worker for shard {index} has wrong identity: {detail}")
            }
            CoordError::Journal { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// Per-shard outcome accounting.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Executions this shard needed (1 = clean first pass).
    pub attempts: u32,
    /// Checkpoint resumes the final successful run stitched together.
    pub resumes: u64,
    /// Hits this shard contributed before the merge.
    pub hits: usize,
}

/// The merged result of a sharded search.
#[derive(Debug, Clone)]
pub struct CoordOutcome {
    /// Global top-K, merged with the unsharded tie-break.
    pub hits: Vec<HitLine>,
    /// Per-shard accounting, indexed by shard.
    pub reports: Vec<ShardReport>,
    /// Shard executions requeued after a failure.
    pub requeues: u64,
    /// Requeues that moved the shard to a different endpoint (replica
    /// failover, as opposed to a same-worker respawn).
    pub failovers: u64,
    /// Connect retries spent across all exchanges (the wire-level
    /// recoveries that did *not* cost a shard attempt).
    pub net_retries: u64,
    /// Shards skipped on resume because the journal had already
    /// committed their results.
    pub journal_skipped: u64,
}

enum AttemptError {
    /// Transient: respawn + requeue (connect refused, wedged lease,
    /// broken stream, failed job).
    Retry(String),
    /// Permanent: wrong worker identity, broken journal.
    Fatal(CoordError),
}

struct CoordState {
    queue: RequeueQueue,
    inflight: usize,
    done: usize,
    failures: u32,
    requeues: u64,
    failovers: u64,
    fatal: Option<CoordError>,
    results: Vec<Option<(Vec<HitLine>, ShardReport)>>,
    journal: CoordJournal,
}

/// Run one query over every shard and merge, with the default
/// transport, no network faults and no journal. `respawn` is invoked
/// before each retry of a shard (the worker may be gone entirely) with
/// the spec and the attempt number about to run — `endpoint_for`
/// tells the launcher which replica to bring up; it should return once
/// the launch is underway — the coordinator itself waits for the
/// socket. Blocks until every shard reports or the search fails.
pub fn search_sharded(
    shards: &[ShardSpec],
    query_fasta: &str,
    cfg: &CoordConfig,
    respawn: &(dyn Fn(&ShardSpec, u32) -> Result<(), String> + Sync),
) -> Result<CoordOutcome, CoordError> {
    search_sharded_durable(
        shards,
        query_fasta,
        cfg,
        respawn,
        &NetTransport,
        &CoordDrill::default(),
    )
}

/// [`search_sharded`] with an explicit transport and the durability /
/// fault-drill hooks: replica failover, seeded network faults, and the
/// SWCRDJ1 journal with crash-resume.
pub fn search_sharded_durable(
    shards: &[ShardSpec],
    query_fasta: &str,
    cfg: &CoordConfig,
    respawn: &(dyn Fn(&ShardSpec, u32) -> Result<(), String> + Sync),
    transport: &dyn ShardTransport,
    drill: &CoordDrill<'_>,
) -> Result<CoordOutcome, CoordError> {
    assert!(!shards.is_empty(), "no shards to search");
    let n = shards.len();
    let query_digest = fnv1a(query_fasta.as_bytes());

    // Load-or-create the journal. A resumed journal must describe this
    // exact search; a mismatch is an operator error, never silent.
    let journal = if drill.resume {
        let path = drill.journal.as_deref().ok_or(CoordError::Journal {
            detail: "resume requested but no journal path configured".into(),
        })?;
        let j = CoordJournal::load(path).map_err(|detail| CoordError::Journal { detail })?;
        j.validate(query_digest, cfg.parent_digest, cfg.top as u64, n as u64)
            .map_err(|detail| CoordError::Journal { detail })?;
        j
    } else {
        CoordJournal::new(query_digest, cfg.parent_digest, cfg.top as u64, n as u64)
    };

    // Seed the queue with uncommitted shards (carrying their surviving
    // attempt counts) and prefill results for committed ones.
    let mut queue = RequeueQueue::new();
    let mut results: Vec<Option<(Vec<HitLine>, ShardReport)>> = vec![None; n];
    let mut done = 0;
    let mut journal_skipped = 0u64;
    // Seed in reverse so LIFO pops shard 0 first — cosmetic, but makes
    // single-threaded traces read naturally.
    for spec in shards.iter().rev() {
        let slot = &journal.shards[spec.index as usize];
        match &slot.committed {
            Some(c) => {
                results[spec.index as usize] = Some((
                    c.hits.clone(),
                    ShardReport {
                        attempts: slot.attempts,
                        resumes: c.resumes,
                        hits: c.hits.len(),
                    },
                ));
                done += 1;
                journal_skipped += 1;
            }
            None => queue.push_task(spec.index as usize, slot.attempts),
        }
    }

    let state = Mutex::new(CoordState {
        queue,
        inflight: 0,
        done,
        failures: 0,
        requeues: 0,
        failovers: 0,
        fatal: None,
        results,
        journal,
    });
    let wake = Condvar::new();
    let net_retries = AtomicU64::new(0);
    let journal_path = drill.journal.as_deref();

    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| loop {
                let (task, attempts) = {
                    let mut g = state.lock().unwrap();
                    loop {
                        if g.fatal.is_some() || g.done == n {
                            return;
                        }
                        if let Some(popped) = g.queue.pop_task() {
                            g.inflight += 1;
                            break popped;
                        }
                        if g.inflight == 0 {
                            return; // nothing queued, nothing running
                        }
                        let (guard, _) = wake.wait_timeout(g, Duration::from_millis(20)).unwrap();
                        g = guard;
                    }
                };
                let spec = &shards[task];
                let outcome = run_shard_attempt(
                    spec,
                    query_fasta,
                    cfg,
                    attempts,
                    respawn,
                    transport,
                    drill.faults,
                    &net_retries,
                );
                let mut g = state.lock().unwrap();
                g.inflight -= 1;
                match outcome {
                    Ok((hits, mut report)) => {
                        report.attempts = attempts + 1;
                        g.journal.shards[task].attempts = attempts + 1;
                        g.journal.shards[task].committed = Some(CommittedShard {
                            resumes: report.resumes,
                            hits: hits.clone(),
                        });
                        g.results[task] = Some((hits, report));
                        g.done += 1;
                        persist_journal(&mut g, journal_path);
                    }
                    Err(AttemptError::Fatal(e)) => {
                        g.fatal.get_or_insert(e);
                    }
                    Err(AttemptError::Retry(e)) => {
                        g.failures += 1;
                        let failures = g.failures;
                        if failures > cfg.failure_budget {
                            g.fatal
                                .get_or_insert(CoordError::BudgetExhausted { failures });
                        } else if attempts + 1 >= cfg.max_attempts {
                            g.fatal.get_or_insert(CoordError::ShardFailed {
                                index: spec.index,
                                attempts: attempts + 1,
                                last: e,
                            });
                        } else {
                            if spec.endpoint_for(attempts + 1) != spec.endpoint_for(attempts) {
                                g.failovers += 1;
                            }
                            g.queue.push_task(task, attempts + 1);
                            g.requeues += 1;
                            g.journal.shards[task].attempts = attempts + 1;
                            persist_journal(&mut g, journal_path);
                        }
                    }
                }
                drop(g);
                wake.notify_all();
            });
        }
    });

    let mut g = state.into_inner().unwrap();
    if let Some(e) = g.fatal.take() {
        return Err(e);
    }
    // Clean finish: the journal has served its purpose.
    if let Some(path) = journal_path {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }
    let mut reports = Vec::with_capacity(n);
    let mut per_shard = Vec::with_capacity(n);
    for slot in g.results.drain(..) {
        let (hits, report) = slot.expect("no fatal error means every shard reported");
        per_shard.push(hits);
        reports.push(report);
    }
    Ok(CoordOutcome {
        hits: merge_hits(per_shard, cfg.top),
        reports,
        requeues: g.requeues,
        failovers: g.failovers,
        net_retries: net_retries.load(Ordering::Relaxed),
        journal_skipped,
    })
}

/// Rewrite the journal under the state lock. A failed write poisons the
/// search with a fatal error — durability was requested, so a journal
/// the operator cannot trust is worse than no result.
fn persist_journal(g: &mut CoordState, path: Option<&Path>) {
    if let Some(path) = path {
        if let Err(e) = g.journal.save(path) {
            g.fatal.get_or_insert(CoordError::Journal {
                detail: format!("coord journal write {}: {e}", path.display()),
            });
        }
    }
}

/// Merge per-shard ranked hit streams into the global top `k` with the
/// single-process tie-break (score descending, global id ascending) —
/// see [`sw_core::merge_top_k`] for the contract over `Hit` values;
/// this is the same order over wire hits, re-ranked 1-based.
pub fn merge_hits(per_shard: Vec<Vec<HitLine>>, k: usize) -> Vec<HitLine> {
    let mut all: Vec<HitLine> = per_shard.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    all.truncate(k);
    for (i, h) in all.iter_mut().enumerate() {
        h.rank = i as u64 + 1;
    }
    all
}

#[allow(clippy::too_many_arguments)]
fn run_shard_attempt(
    spec: &ShardSpec,
    query_fasta: &str,
    cfg: &CoordConfig,
    attempts: u32,
    respawn: &(dyn Fn(&ShardSpec, u32) -> Result<(), String> + Sync),
    transport: &dyn ShardTransport,
    faults: Option<&NetFaultInjector>,
    net_retries: &AtomicU64,
) -> Result<(Vec<HitLine>, ShardReport), AttemptError> {
    let endpoint = spec.endpoint_for(attempts);
    if attempts > 0 {
        // The worker may be dead (that is usually why we are here):
        // bring it back before the backoff, resume does the rest.
        std::thread::sleep(Duration::from_millis(cfg.backoff_ms * attempts as u64));
        respawn(spec, attempts).map_err(AttemptError::Retry)?;
    }

    // Injected network fault for this (shard, attempt), if the drill
    // scheduled one. Refuse and black-hole preempt the exchange; drop
    // and slow-drip shape the submit stream below.
    let fault = faults.and_then(|f| f.on_shard_attempt(spec.index, attempts));
    match fault {
        Some(NetFaultKind::Refuse) => {
            return Err(AttemptError::Retry(format!(
                "injected fault: connection refused by {endpoint}"
            )));
        }
        Some(NetFaultKind::BlackHole) => {
            // The wire eats everything, heartbeats included: after
            // HEARTBEAT_MISSES silent beats the lease is declared lost.
            let grace = cfg
                .heartbeat_ms
                .max(1)
                .saturating_mul(HEARTBEAT_MISSES as u64)
                .min(cfg.lease_timeout_ms);
            std::thread::sleep(Duration::from_millis(grace));
            return Err(AttemptError::Retry(format!(
                "injected fault: {endpoint} black-holed, \
                 {HEARTBEAT_MISSES} heartbeats missed"
            )));
        }
        _ => {}
    }

    transport
        .wait_ready(endpoint, cfg.connect_wait_ms)
        .map_err(AttemptError::Retry)?;
    let retry = RetryPolicy {
        retries: cfg.connect_retries,
        backoff_ms: cfg.connect_backoff_ms,
        seed: cfg.seed ^ spec.index ^ ((attempts as u64) << 32),
    };

    // Identity check: never submit to a worker serving the wrong shard.
    let deadline = Instant::now() + Duration::from_millis(cfg.lease_timeout_ms);
    let wire = Wire {
        transport,
        endpoint,
        retry: &retry,
        heartbeat_ms: cfg.heartbeat_ms,
        net_retries,
    };
    let health = wire
        .request(&health_request(), deadline, None, None)
        .map_err(|e| AttemptError::Retry(format!("health probe failed: {e}")))?;
    let health = health
        .first()
        .cloned()
        .ok_or_else(|| AttemptError::Retry("empty health reply".into()))?;
    match json::field_u64(&health, "shard") {
        Some(i) if i == spec.index => {}
        other => {
            return Err(AttemptError::Fatal(CoordError::WrongShard {
                index: spec.index,
                detail: format!("health reports shard {other:?}"),
            }))
        }
    }
    if let Some(want) = spec.expect_digest {
        let got = json::field_str(&health, "snapshot_digest");
        if got.as_deref() != Some(format!("{want:016x}").as_str()) {
            return Err(AttemptError::Fatal(CoordError::WrongShard {
                index: spec.index,
                detail: format!("db digest {got:?}, want {want:016x}"),
            }));
        }
    }

    let (drop_after, drip) = match fault {
        Some(NetFaultKind::Drop(n)) => (Some(n), None),
        Some(NetFaultKind::SlowDrip(d)) => (None, Some(d)),
        _ => (None, None),
    };
    let req = submit_request(&cfg.tenant, query_fasta, cfg.top, cfg.drill.as_deref());
    let lines = wire
        .request(&req, deadline, drop_after, drip)
        .map_err(|e| AttemptError::Retry(format!("submit failed: {e}")))?;
    let outcome = parse_submit_response(&lines).map_err(AttemptError::Retry)?;
    if outcome.state != "done" {
        return Err(AttemptError::Retry(format!(
            "job {} ended {}: {}",
            outcome.job,
            outcome.state,
            outcome.error.unwrap_or_default()
        )));
    }
    let report = ShardReport {
        attempts: 0, // stamped by the caller
        resumes: outcome.resumes,
        hits: outcome.hits.len(),
    };
    Ok((outcome.hits, report))
}

/// One coordinator→worker exchange context: transport, target, connect
/// retry policy and heartbeat cadence.
struct Wire<'a> {
    transport: &'a dyn ShardTransport,
    endpoint: &'a Endpoint,
    retry: &'a RetryPolicy,
    heartbeat_ms: u64,
    net_retries: &'a AtomicU64,
}

impl Wire<'_> {
    /// Send one request line and collect the reply stream under the
    /// lease `deadline`. While the stream is silent longer than the
    /// heartbeat interval, a side-channel health probe checks the
    /// worker is still alive; [`HEARTBEAT_MISSES`] consecutive failed
    /// probes end the lease early instead of waiting out the full
    /// deadline. `drop_after` / `drip` are the injected-fault shaping
    /// hooks (cut the stream after N lines; delay every line).
    fn request(
        &self,
        line: &str,
        deadline: Instant,
        drop_after: Option<u64>,
        drip: Option<Duration>,
    ) -> io::Result<Vec<String>> {
        let connect_timeout = Duration::from_millis(250);
        let (mut stream, used) =
            self.transport
                .connect_retry(self.endpoint, connect_timeout, self.retry)?;
        self.net_retries.fetch_add(used as u64, Ordering::Relaxed);
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        stream.shutdown_write()?;
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        let mut buf = String::new();
        let mut last_activity = Instant::now();
        let mut misses = 0u32;
        loop {
            if let Some(n) = drop_after {
                if lines.len() as u64 >= n {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        format!("injected fault: stream dropped after {n} lines"),
                    ));
                }
            }
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) => return Ok(lines),
                Ok(_) => {
                    if let Some(d) = drip {
                        std::thread::sleep(d);
                    }
                    lines.push(buf.trim_end().to_string());
                    last_activity = Instant::now();
                    misses = 0;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "shard lease expired mid-stream",
                        ));
                    }
                    if self.heartbeat_ms > 0
                        && last_activity.elapsed() >= Duration::from_millis(self.heartbeat_ms)
                    {
                        match self.heartbeat() {
                            Ok(()) => misses = 0,
                            Err(_) => misses += 1,
                        }
                        last_activity = Instant::now();
                        if misses >= HEARTBEAT_MISSES {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!(
                                    "worker heartbeat lost ({HEARTBEAT_MISSES} consecutive misses)"
                                ),
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One health heartbeat on a fresh connection (the submit stream
    /// itself may legitimately be silent for a long time mid-search).
    fn heartbeat(&self) -> io::Result<()> {
        let timeout = Duration::from_millis(250);
        let mut stream = self.transport.connect(self.endpoint, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.write_all(health_request().as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        stream.shutdown_write()?;
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(n) if n > 0 => Ok(()),
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty heartbeat reply",
            )),
            Err(e) => Err(e),
        }
    }
}

/// Politely shut a worker down (used by launchers that own the worker
/// processes they spawned). Errors are reported, not fatal — the
/// caller usually also holds the child handle and can wait/kill.
pub fn shutdown_worker(endpoint: &Endpoint) -> io::Result<()> {
    client::request_endpoint(endpoint, &shutdown_request()).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(score: i64, id: u64) -> HitLine {
        HitLine {
            rank: 0,
            score,
            id,
            header: format!("sp|{id}|h"),
        }
    }

    #[test]
    fn merge_reproduces_single_process_tie_break() {
        // Equal scores straddling the shard boundary: global id breaks
        // the tie, regardless of which shard contributed which hit.
        let shard0 = vec![hit(50, 2), hit(40, 0), hit(40, 1)];
        let shard1 = vec![hit(60, 7), hit(40, 3), hit(12, 9)];
        let merged = merge_hits(vec![shard0, shard1], 5);
        let key: Vec<(i64, u64, u64)> = merged.iter().map(|h| (h.score, h.id, h.rank)).collect();
        assert_eq!(
            key,
            vec![(60, 7, 1), (50, 2, 2), (40, 0, 3), (40, 1, 4), (40, 3, 5)]
        );
    }

    #[test]
    fn merge_truncates_and_reranks() {
        let merged = merge_hits(vec![vec![hit(1, 0)], vec![hit(3, 5), hit(2, 4)]], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].rank, 1);
        assert_eq!(merged[0].id, 5);
        assert_eq!(merged[1].rank, 2);
        assert_eq!(merged[1].id, 4);
    }

    #[test]
    fn merge_tie_break_exactly_at_k_boundary_with_replica_results() {
        // Five hits share one score and straddle the K=4 boundary; the
        // two halves come from different shards, and shard 1's list is
        // the replica-substituted copy of what its dead primary would
        // have sent (identical bytes — both replicas serve the same
        // SWSHRD1 shard). The merge must keep ids 2,3,5,8 and cut id 9
        // no matter which side contributed which hit.
        let shard0_primary = vec![hit(70, 3), hit(70, 8), hit(70, 9)];
        let shard1_replica = vec![hit(70, 2), hit(70, 5), hit(60, 4)];
        let merged = merge_hits(vec![shard0_primary.clone(), shard1_replica.clone()], 4);
        let key: Vec<(i64, u64, u64)> = merged.iter().map(|h| (h.score, h.id, h.rank)).collect();
        assert_eq!(
            key,
            vec![(70, 2, 1), (70, 3, 2), (70, 5, 3), (70, 8, 4)],
            "equal scores at the K boundary truncate by ascending global id"
        );
        // Order of shard lists (who failed over, who didn't) is
        // irrelevant: the merge is a pure function of the union.
        let swapped = merge_hits(vec![shard1_replica, shard0_primary], 4);
        assert_eq!(merged, swapped);
    }

    #[test]
    fn endpoint_ring_walks_replicas_per_attempt() {
        let spec = ShardSpec {
            index: 0,
            endpoints: vec![
                Endpoint::parse("/run/p.sock").unwrap(),
                Endpoint::parse("tcp://127.0.0.1:9001").unwrap(),
            ],
            expect_digest: None,
        };
        assert_eq!(spec.endpoint_for(0).to_string(), "/run/p.sock");
        assert_eq!(spec.endpoint_for(1).to_string(), "tcp://127.0.0.1:9001");
        assert_eq!(spec.endpoint_for(2).to_string(), "/run/p.sock");
        let single = ShardSpec::unix(1, "/run/only.sock", Some(7));
        assert_eq!(single.endpoint_for(5).to_string(), "/run/only.sock");
    }

    #[test]
    fn budget_and_attempt_caps_stop_a_dead_shard() {
        // No worker listening anywhere: every attempt fails to connect.
        let dir = std::env::temp_dir().join(format!("sw-coord-dead-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let shards = vec![ShardSpec::unix(0, dir.join("nobody.sock"), None)];
        let mut cfg = CoordConfig::new(5);
        cfg.connect_wait_ms = 30;
        cfg.backoff_ms = 1;
        cfg.max_attempts = 2;
        let respawns = std::sync::atomic::AtomicU32::new(0);
        let err = search_sharded(&shards, ">q\nARN\n", &cfg, &|_, _| {
            respawns.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        })
        .expect_err("nothing to talk to");
        match err {
            CoordError::ShardFailed {
                index, attempts, ..
            } => {
                assert_eq!(index, 0);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(
            respawns.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "one respawn before the second (and last) attempt"
        );
    }

    #[test]
    fn resume_requires_a_journal_path() {
        let shards = vec![ShardSpec::unix(0, "/nonexistent.sock", None)];
        let drill = CoordDrill {
            faults: None,
            journal: None,
            resume: true,
        };
        let err = search_sharded_durable(
            &shards,
            ">q\nARN\n",
            &CoordConfig::new(5),
            &|_, _| Ok(()),
            &NetTransport,
            &drill,
        )
        .expect_err("resume without a journal is an operator error");
        assert!(matches!(err, CoordError::Journal { .. }), "{err}");
    }
}
