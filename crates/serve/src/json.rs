//! Minimal flat-JSON encode/decode for the serve wire protocol.
//!
//! The protocol is one flat object per line with string, unsigned
//! integer and boolean values only — no nesting, no arrays. That makes
//! a full JSON parser unnecessary: requests and responses are built
//! with [`escape`] and read back with the `field_*` extractors. The
//! build environment has no serde (the workspace serde is a no-op
//! shim), so this is the serialization layer, not a shortcut around
//! one.

/// Escape a string for embedding in a JSON string literal. Handles the
/// two mandatory escapes plus the whitespace controls FASTA payloads
/// carry; remaining control characters take the `\u00XX` form.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`]. Unknown escape sequences pass through verbatim
/// (minus the backslash) rather than erroring — the peer is our own
/// encoder, so anything else is already a protocol violation the
/// field extractors will surface.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&code, 16).ok().and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => out.push_str(&code),
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Extract and unescape a string field `"key":"value"`.
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(unescape(&rest[..end?]))
}

/// Extract an unsigned integer field `"key":123`.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract a boolean field `"key":true|false`.
pub fn field_bool(line: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_fasta_payloads() {
        let fasta = ">q1 test \"query\"\nMKV\\LST\r\n\tACDE";
        let escaped = escape(fasta);
        assert!(!escaped.contains('\n'), "stays on one line");
        assert_eq!(unescape(&escaped), fasta);
    }

    #[test]
    fn control_characters_roundtrip_as_unicode_escapes() {
        let s = "a\u{01}b";
        assert_eq!(escape(s), "a\\u0001b");
        assert_eq!(unescape(&escape(s)), s);
    }

    #[test]
    fn field_extraction_honors_escapes() {
        let line = format!(
            "{{\"op\":\"submit\",\"query\":\"{}\",\"top\":10,\"wait\":true}}",
            escape(">q \"x\"\nMKV")
        );
        assert_eq!(field_str(&line, "op").as_deref(), Some("submit"));
        assert_eq!(field_str(&line, "query").as_deref(), Some(">q \"x\"\nMKV"));
        assert_eq!(field_u64(&line, "top"), Some(10));
        assert_eq!(field_bool(&line, "wait"), Some(true));
        assert_eq!(field_str(&line, "missing"), None);
        assert_eq!(field_u64(&line, "op"), None, "string is not a number");
    }

    #[test]
    fn embedded_payload_cannot_spoof_a_field() {
        // A query whose text contains what looks like a JSON field must
        // not shadow the real one: escaping turns its quotes into \" so
        // the needle never matches inside the payload.
        let evil = ">q\n\"op\":\"shutdown\"";
        let line = format!("{{\"op\":\"submit\",\"query\":\"{}\"}}", escape(evil));
        assert_eq!(field_str(&line, "op").as_deref(), Some("submit"));
        assert_eq!(field_str(&line, "query").as_deref(), Some(evil));
    }
}
