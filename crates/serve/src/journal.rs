//! SWCRDJ1 — the coordinator's crash-survivable attempt journal.
//!
//! A sharded search coordinates N worker leases; if the coordinator
//! itself is SIGKILLed mid-search, every completed shard's work would be
//! lost and a rerun would start from zero. The journal fixes that: after
//! each shard's top-K is accepted, the coordinator rewrites a small
//! CRC-guarded binary file (atomic tmp + rename, the same durability
//! idiom as SWCKPT1 checkpoints) recording per-shard attempt counts and
//! the committed hit lists plus their digests. A restart with
//! `--resume-coord` loads the journal, validates it against the query,
//! the parent snapshot and K, seeds the scheduler with the surviving
//! attempt counts, skips committed shards entirely, and — because the
//! merge is a pure function of the per-shard lists — produces merged
//! bytes identical to an uninterrupted run.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"SWCRDJ1\0"
//! crc      4  CRC32 of everything after this field
//! payload:
//!   query_digest   u64   FNV-1a of the query FASTA bytes
//!   parent_digest  u64   parent snapshot digest (0 = unknown)
//!   top            u64   merge K
//!   n_shards       u64
//!   per shard:
//!     index        u64
//!     attempts     u32
//!     committed    u8    0 | 1
//!     (committed only)
//!     resumes      u64
//!     hits_digest  u64   FNV-1a over the serialized hit list
//!     n_hits       u64
//!     per hit: score i64, id u64, header_len u64, header bytes
//! ```

use std::fs;
use std::io;
use std::path::Path;

use crate::client::HitLine;
use sw_swdb::integrity::crc32;

/// Magic prefix of a coordinator journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"SWCRDJ1\0";

/// FNV-1a digest used for the query and per-shard hit lists. Matches
/// the snapshot digest primitive: cheap, stable, order-sensitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of a committed per-shard hit list (order-sensitive over rank,
/// score, id and header of every hit).
pub fn hits_digest(hits: &[HitLine]) -> u64 {
    let mut buf = Vec::new();
    for h in hits {
        buf.extend_from_slice(&h.rank.to_le_bytes());
        buf.extend_from_slice(&h.score.to_le_bytes());
        buf.extend_from_slice(&h.id.to_le_bytes());
        buf.extend_from_slice(&(h.header.len() as u64).to_le_bytes());
        buf.extend_from_slice(h.header.as_bytes());
    }
    fnv1a(&buf)
}

/// A committed shard result held by the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedShard {
    /// Checkpoint resumes the winning attempt stitched together.
    pub resumes: u64,
    /// The shard's accepted top-K (global ids, worker rank order).
    pub hits: Vec<HitLine>,
}

/// Per-shard journal slot: attempt count plus the committed result once
/// the shard has one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlot {
    /// Shard index (equals position, kept explicit for validation).
    pub index: u64,
    /// Attempts consumed so far (committed or not).
    pub attempts: u32,
    /// The accepted result, once the shard completed.
    pub committed: Option<CommittedShard>,
}

/// The coordinator journal: identity of the search plus one slot per
/// shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordJournal {
    /// FNV-1a of the query FASTA bytes — a resumed run must be the same
    /// search.
    pub query_digest: u64,
    /// Parent snapshot digest (0 when the caller has none).
    pub parent_digest: u64,
    /// Merge K.
    pub top: u64,
    /// One slot per shard, in shard order.
    pub shards: Vec<ShardSlot>,
}

impl CoordJournal {
    /// A fresh journal with `n_shards` empty slots.
    pub fn new(query_digest: u64, parent_digest: u64, top: u64, n_shards: u64) -> Self {
        CoordJournal {
            query_digest,
            parent_digest,
            top,
            shards: (0..n_shards)
                .map(|index| ShardSlot {
                    index,
                    attempts: 0,
                    committed: None,
                })
                .collect(),
        }
    }

    /// Number of shards with a committed result.
    pub fn committed_count(&self) -> usize {
        self.shards.iter().filter(|s| s.committed.is_some()).count()
    }

    /// Serialize to the SWCRDJ1 byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.query_digest.to_le_bytes());
        payload.extend_from_slice(&self.parent_digest.to_le_bytes());
        payload.extend_from_slice(&self.top.to_le_bytes());
        payload.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for slot in &self.shards {
            payload.extend_from_slice(&slot.index.to_le_bytes());
            payload.extend_from_slice(&slot.attempts.to_le_bytes());
            match &slot.committed {
                None => payload.push(0),
                Some(c) => {
                    payload.push(1);
                    payload.extend_from_slice(&c.resumes.to_le_bytes());
                    payload.extend_from_slice(&hits_digest(&c.hits).to_le_bytes());
                    payload.extend_from_slice(&(c.hits.len() as u64).to_le_bytes());
                    for h in &c.hits {
                        payload.extend_from_slice(&h.score.to_le_bytes());
                        payload.extend_from_slice(&h.id.to_le_bytes());
                        payload.extend_from_slice(&(h.header.len() as u64).to_le_bytes());
                        payload.extend_from_slice(h.header.as_bytes());
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(JOURNAL_MAGIC);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and CRC-check an SWCRDJ1 byte image.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut c = Cursor { bytes, at: 0 };
        if c.take(8)? != JOURNAL_MAGIC.as_slice() {
            return Err("coord journal: bad magic (not SWCRDJ1)".into());
        }
        let crc = u32::from_le_bytes(c.take(4)?.try_into().unwrap());
        let payload = &bytes[c.at..];
        if crc32(payload) != crc {
            return Err("coord journal: CRC mismatch (truncated or corrupt)".into());
        }
        let query_digest = c.u64()?;
        let parent_digest = c.u64()?;
        let top = c.u64()?;
        let n_shards = c.u64()?;
        if n_shards > 1 << 20 {
            return Err("coord journal: implausible shard count".into());
        }
        let mut shards = Vec::with_capacity(n_shards as usize);
        for want in 0..n_shards {
            let index = c.u64()?;
            if index != want {
                return Err(format!(
                    "coord journal: shard slot out of order (want {want}, got {index})"
                ));
            }
            let attempts = u32::from_le_bytes(c.take(4)?.try_into().unwrap());
            let committed = match c.take(1)?[0] {
                0 => None,
                1 => {
                    let resumes = c.u64()?;
                    let digest = c.u64()?;
                    let n_hits = c.u64()?;
                    if n_hits > 1 << 24 {
                        return Err("coord journal: implausible hit count".into());
                    }
                    let mut hits = Vec::with_capacity(n_hits as usize);
                    for rank in 0..n_hits {
                        let score = i64::from_le_bytes(c.take(8)?.try_into().unwrap());
                        let id = c.u64()?;
                        let len = c.u64()? as usize;
                        let header = String::from_utf8(c.take(len)?.to_vec())
                            .map_err(|_| "coord journal: non-utf8 header".to_string())?;
                        hits.push(HitLine {
                            rank: rank + 1,
                            score,
                            id,
                            header,
                        });
                    }
                    if hits_digest(&hits) != digest {
                        return Err(format!("coord journal: shard {index} hit digest mismatch"));
                    }
                    Some(CommittedShard { resumes, hits })
                }
                b => return Err(format!("coord journal: bad committed flag {b}")),
            };
            shards.push(ShardSlot {
                index,
                attempts,
                committed,
            });
        }
        if c.at != bytes.len() {
            return Err("coord journal: trailing bytes".into());
        }
        Ok(CoordJournal {
            query_digest,
            parent_digest,
            top,
            shards,
        })
    }

    /// Atomically persist the journal (`tmp` + rename, fsync'd), so a
    /// crash mid-write leaves either the old image or the new one —
    /// never a torn file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())?;
        let f = fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    }

    /// Load and decode a journal file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let bytes = fs::read(path).map_err(|e| format!("coord journal {}: {e}", path.display()))?;
        CoordJournal::decode(&bytes).map_err(|e| format!("coord journal {}: {e}", path.display()))
    }

    /// Validate that a loaded journal belongs to *this* search: same
    /// query, same parent snapshot (when both sides know it), same K,
    /// same shard count.
    pub fn validate(
        &self,
        query_digest: u64,
        parent_digest: u64,
        top: u64,
        n_shards: u64,
    ) -> Result<(), String> {
        if self.query_digest != query_digest {
            return Err("coord journal: query changed since the journal was written".into());
        }
        if self.parent_digest != 0 && parent_digest != 0 && self.parent_digest != parent_digest {
            return Err("coord journal: parent snapshot digest mismatch".into());
        }
        if self.top != top {
            return Err(format!(
                "coord journal: top-K changed ({} vs {top})",
                self.top
            ));
        }
        if self.shards.len() as u64 != n_shards {
            return Err(format!(
                "coord journal: shard count changed ({} vs {n_shards})",
                self.shards.len()
            ));
        }
        Ok(())
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.bytes.len() {
            return Err("coord journal: truncated".into());
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoordJournal {
        let mut j = CoordJournal::new(fnv1a(b">q\nACDE\n"), 0xfeed, 5, 3);
        j.shards[1].attempts = 2;
        j.shards[1].committed = Some(CommittedShard {
            resumes: 1,
            hits: vec![
                HitLine {
                    rank: 1,
                    score: 42,
                    id: 7,
                    header: "seq7 tie".into(),
                },
                HitLine {
                    rank: 2,
                    score: 40,
                    id: 3,
                    header: "seq3".into(),
                },
            ],
        });
        j.shards[2].attempts = 1;
        j
    }

    #[test]
    fn journal_roundtrips_byte_exact() {
        let j = sample();
        let bytes = j.encode();
        let back = CoordJournal::decode(&bytes).expect("decode");
        assert_eq!(back, j);
        assert_eq!(back.encode(), bytes, "re-encode is byte-stable");
        assert_eq!(back.committed_count(), 1);
    }

    #[test]
    fn journal_rejects_corruption() {
        let j = sample();
        let good = j.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(CoordJournal::decode(&bad_magic)
            .unwrap_err()
            .contains("magic"));

        // Flip one payload byte: CRC must catch it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(CoordJournal::decode(&flipped).unwrap_err().contains("CRC"));

        // Truncation is caught before any field parse goes wild.
        assert!(CoordJournal::decode(&good[..good.len() - 3]).is_err());
        assert!(CoordJournal::decode(&good[..6]).is_err());
    }

    #[test]
    fn journal_save_load_is_atomic_shaped() {
        let dir = std::env::temp_dir().join(format!("swcrdj-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coord.journal");
        let j = sample();
        j.save(&path).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        let back = CoordJournal::load(&path).expect("load");
        assert_eq!(back, j);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_validation_pins_search_identity() {
        let j = sample();
        let q = j.query_digest;
        assert!(j.validate(q, 0xfeed, 5, 3).is_ok());
        assert!(j.validate(q, 0, 5, 3).is_ok(), "unknown parent is allowed");
        assert!(j.validate(q ^ 1, 0xfeed, 5, 3).is_err());
        assert!(j.validate(q, 0xdead, 5, 3).is_err());
        assert!(j.validate(q, 0xfeed, 6, 3).is_err());
        assert!(j.validate(q, 0xfeed, 5, 4).is_err());
    }
}
