//! The daemon's job registry: every submitted search, its lifecycle
//! state, and the admission gate that caps concurrent runs.
//!
//! One `Mutex` guards the whole table — job turnover is measured in
//! searches per second, not millions of ops, so contention is not a
//! concern and a single lock keeps the state machine easy to audit.
//! The condvar wakes queued jobs when a running one finishes (or a
//! queued one is cancelled); waits use a timeout so a drain requested
//! through a *parent* signal (daemon shutdown, process SIGINT) is
//! noticed too, since parents don't know about our condvar.

use crate::json;
use crate::obs::{LogLevel, Obs, Phases};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use sw_sched::DrainSignal;

/// Lifecycle of one submitted search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an admission slot.
    Queued,
    /// Holding a slot, search in flight.
    Running,
    /// Completed; hits were streamed to the submitter.
    Done,
    /// The search itself errored.
    Failed,
    /// Drained before completion (job cancel or daemon shutdown). If
    /// the daemon has a checkpoint dir the job's progress is on disk,
    /// keyed by fingerprint: resubmitting the same query resumes it.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One registry entry, as reported by `status` and the shutdown dump.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Monotone job id; doubles as the trace query id.
    pub id: u64,
    /// Tenant the job is accounted against.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Query length in residues.
    pub query_len: usize,
    /// Hits reported (0 until done).
    pub hits: usize,
    /// How many checkpoint resumes this run stitched together.
    pub resumes: u64,
    /// Queries sharing this job's region (0 until gathered).
    pub batch: usize,
    /// Lifecycle stamps, µs since the daemon epoch.
    pub phases: Phases,
    /// Failure message for [`JobState::Failed`].
    pub error: Option<String>,
}

impl JobRecord {
    /// One flat JSON line (the registry dump format; also the `status`
    /// response body). Lifecycle stamps appear only for phases the job
    /// actually reached.
    pub fn to_json(&self) -> String {
        let mut line = format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"state\":\"{}\",\"query_len\":{},\"hits\":{},\"resumes\":{},\"batch\":{},\"submitted_us\":{}",
            self.id,
            json::escape(&self.tenant),
            self.state.name(),
            self.query_len,
            self.hits,
            self.resumes,
            self.batch,
            self.phases.submitted_us
        );
        for (key, stamp) in [
            ("admitted_us", self.phases.admitted_us),
            ("gathered_us", self.phases.gathered_us),
            ("started_us", self.phases.started_us),
            ("first_hit_us", self.phases.first_hit_us),
            ("finished_us", self.phases.finished_us),
        ] {
            if let Some(t) = stamp {
                line.push_str(&format!(",\"{key}\":{t}"));
            }
        }
        if let Some(e) = &self.error {
            line.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
        }
        line.push('}');
        line
    }
}

/// Cumulative per-tenant outcome totals since daemon start (terminal
/// states never decrement, unlike the in-flight quota count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantTotals {
    /// Submits accepted into the registry.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that errored.
    pub failed: u64,
    /// Jobs drained before completion.
    pub cancelled: u64,
    /// Submits bounced at the door.
    pub rejected: u64,
}

struct Entry {
    record: JobRecord,
    drain: Arc<DrainSignal>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    running: usize,
    rejected: u64,
    done_total: u64,
    failed_total: u64,
    cancelled_total: u64,
    tenants: BTreeMap<String, TenantTotals>,
    jobs: BTreeMap<u64, Entry>,
}

/// Counts over the whole registry, for `stats` and the CI smoke gate.
/// The first block are current-state gauges derived from the live job
/// table; the `*_total` fields and per-tenant totals are cumulative
/// since daemon start and never decrease.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs ever accepted.
    pub total: usize,
    /// Currently waiting for a slot.
    pub queued: usize,
    /// Currently holding a slot.
    pub running: usize,
    /// Completed with hits.
    pub done: usize,
    /// Errored.
    pub failed: usize,
    /// Drained before completion.
    pub cancelled: usize,
    /// Submissions bounced at the door (tenant over quota).
    pub rejected: u64,
    /// Jobs ever finished successfully.
    pub done_total: u64,
    /// Jobs ever finished in failure.
    pub failed_total: u64,
    /// Jobs ever cancelled.
    pub cancelled_total: u64,
    /// Cumulative per-tenant outcome totals, tenant-sorted.
    pub tenants: Vec<(String, TenantTotals)>,
}

impl StatsSnapshot {
    /// One flat JSON line (the `stats` response body). Legacy keys keep
    /// their position so existing `"done":N` greps stay valid; the
    /// cumulative counters and tenant count extend the line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"jobs\":{},\"queued\":{},\"running\":{},\"done\":{},\"failed\":{},\"cancelled\":{},\"rejected\":{},\"done_total\":{},\"failed_total\":{},\"cancelled_total\":{},\"tenants\":{}}}",
            self.total,
            self.queued,
            self.running,
            self.done,
            self.failed,
            self.cancelled,
            self.rejected,
            self.done_total,
            self.failed_total,
            self.cancelled_total,
            self.tenants.len()
        )
    }
}

/// Thread-safe job table + admission gate. See the module docs for the
/// locking story.
pub struct Registry {
    inner: Mutex<Inner>,
    admit: Condvar,
    obs: Arc<Obs>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry; ids start at 1 (`0` is the solo-run trace id,
    /// never a job). Wired to a silent obs plane — embedders that want
    /// metrics/logging use [`Registry::with_obs`].
    pub fn new() -> Self {
        Registry::with_obs(Arc::new(Obs::disabled()))
    }

    /// An empty registry reporting every lifecycle transition to `obs`
    /// (phase stamps use its daemon-epoch clock).
    pub fn with_obs(obs: Arc<Obs>) -> Self {
        Registry {
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            admit: Condvar::new(),
            obs,
        }
    }

    /// The observability plane this registry reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// `true` while any job is queued or running — what the drain-time
    /// accept loop checks so health/metrics probes keep answering until
    /// the last in-flight job reaches a terminal state.
    pub fn has_inflight(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.jobs
            .values()
            .any(|e| matches!(e.record.state, JobState::Queued | JobState::Running))
    }

    /// Accept a job, enforcing the per-tenant in-flight quota. Returns
    /// the job id and its drain signal, or the rejection message.
    pub fn submit(
        &self,
        tenant: &str,
        query_len: usize,
        quota: usize,
        drain: Arc<DrainSignal>,
    ) -> Result<(u64, Arc<DrainSignal>), String> {
        let mut g = self.inner.lock().unwrap();
        let in_flight = g
            .jobs
            .values()
            .filter(|e| {
                e.record.tenant == tenant
                    && matches!(e.record.state, JobState::Queued | JobState::Running)
            })
            .count();
        if in_flight >= quota {
            g.rejected += 1;
            g.tenants.entry(tenant.to_string()).or_default().rejected += 1;
            drop(g);
            self.obs.log(
                LogLevel::Warn,
                "job_rejected",
                &format!(
                    ",\"tenant\":\"{}\",\"in_flight\":{in_flight},\"quota\":{quota}",
                    json::escape(tenant)
                ),
            );
            return Err(format!(
                "tenant '{tenant}' quota exceeded ({in_flight} jobs in flight, quota {quota})"
            ));
        }
        let id = g.next_id;
        g.next_id += 1;
        g.tenants.entry(tenant.to_string()).or_default().submitted += 1;
        g.jobs.insert(
            id,
            Entry {
                record: JobRecord {
                    id,
                    tenant: tenant.to_string(),
                    state: JobState::Queued,
                    query_len,
                    hits: 0,
                    resumes: 0,
                    batch: 0,
                    phases: Phases {
                        submitted_us: self.obs.now_us(),
                        ..Phases::default()
                    },
                    error: None,
                },
                drain: Arc::clone(&drain),
            },
        );
        drop(g);
        self.obs.log(
            LogLevel::Info,
            "job_submitted",
            &format!(
                ",\"job\":{id},\"tenant\":\"{}\",\"query_len\":{query_len}",
                json::escape(tenant)
            ),
        );
        Ok((id, drain))
    }

    /// Stamp the admission phase: the ack line reached the client.
    pub fn mark_admitted(&self, id: u64) {
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.jobs.get_mut(&id) {
            e.record.phases.admitted_us = Some(self.obs.now_us());
        }
        drop(g);
        self.obs
            .log(LogLevel::Debug, "job_admitted", &format!(",\"job\":{id}"));
    }

    /// Stamp the gather phase: the collector pulled the job out of the
    /// gather window into a region of `batch` queries.
    pub fn mark_gathered(&self, id: u64, batch: usize) {
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.jobs.get_mut(&id) {
            e.record.phases.gathered_us = Some(self.obs.now_us());
            e.record.batch = batch;
        }
        drop(g);
        self.obs.log(
            LogLevel::Debug,
            "job_gathered",
            &format!(",\"job\":{id},\"batch\":{batch}"),
        );
    }

    /// Stamp the first hit line streamed back to the submitter (first
    /// call wins; later hits don't move the stamp).
    pub fn record_first_hit(&self, id: u64) {
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.jobs.get_mut(&id) {
            if e.record.phases.first_hit_us.is_none() {
                let now = self.obs.now_us();
                e.record.phases.first_hit_us = Some(now);
                self.obs
                    .on_first_hit(now.saturating_sub(e.record.phases.submitted_us));
            }
        }
    }

    /// Block until job `id` gets one of `max_concurrent` run slots.
    /// Returns `false` (marking the job cancelled) if its drain — or a
    /// parent drain, hence the timed wait — fires first.
    pub fn admit(&self, id: u64, max_concurrent: usize) -> bool {
        let mut g = self.inner.lock().unwrap();
        loop {
            let drained = g.jobs.get(&id).is_none_or(|e| e.drain.is_requested());
            if drained {
                if let Some(e) = g.jobs.get_mut(&id) {
                    e.record.state = JobState::Cancelled;
                }
                return false;
            }
            if g.running < max_concurrent {
                g.running += 1;
                if let Some(e) = g.jobs.get_mut(&id) {
                    e.record.state = JobState::Running;
                    e.record.phases.started_us = Some(self.obs.now_us());
                }
                return true;
            }
            let (guard, _) = self
                .admit
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap();
            g = guard;
        }
    }

    /// Move job `id` to `Running` and charge a run slot — unless its
    /// drain already fired, in which case the job is marked `Cancelled`
    /// and no slot is taken. The batching collector calls this for every
    /// member of a shared region just before the region starts; unlike
    /// [`Registry::admit`] it never blocks, because the collector itself
    /// is the concurrency gate (one region at a time, `max_concurrent`
    /// queries per region).
    pub fn mark_running(&self, id: u64) -> bool {
        let mut g = self.inner.lock().unwrap();
        let Some(e) = g.jobs.get_mut(&id) else {
            return false;
        };
        if e.drain.is_requested() {
            e.record.state = JobState::Cancelled;
            return false;
        }
        e.record.state = JobState::Running;
        e.record.phases.started_us = Some(self.obs.now_us());
        let tenant = json::escape(&e.record.tenant);
        let batch = e.record.batch;
        g.running += 1;
        drop(g);
        self.obs.log(
            LogLevel::Info,
            "job_running",
            &format!(",\"job\":{id},\"tenant\":\"{tenant}\",\"batch\":{batch}"),
        );
        true
    }

    /// Record how job `id` ended, releasing its run slot if it held one.
    /// Safe on jobs that never reached `Running` (ack-write failure,
    /// cancelled while queued): the slot count only drops when the job
    /// actually charged it.
    ///
    /// Stamps the terminal phase, bumps the cumulative daemon-lifetime
    /// and per-tenant counters, and folds the job's phase latencies into
    /// the obs histograms. Returns the updated record plus whether the
    /// job crossed the slow-query threshold (the caller then dumps its
    /// merged timeline).
    pub fn finish(
        &self,
        id: u64,
        state: JobState,
        hits: usize,
        resumes: u64,
        error: Option<String>,
    ) -> Option<(JobRecord, bool)> {
        let mut g = self.inner.lock().unwrap();
        let mut was_running = false;
        let mut finished: Option<JobRecord> = None;
        if let Some(e) = g.jobs.get_mut(&id) {
            was_running = e.record.state == JobState::Running;
            e.record.state = state;
            e.record.hits = hits;
            e.record.resumes = resumes;
            e.record.error = error;
            e.record.phases.finished_us = Some(self.obs.now_us());
            finished = Some(e.record.clone());
        }
        if was_running {
            g.running = g.running.saturating_sub(1);
        }
        if let Some(rec) = &finished {
            let totals = g.tenants.entry(rec.tenant.clone()).or_default();
            match state {
                JobState::Done => totals.done += 1,
                JobState::Failed => totals.failed += 1,
                JobState::Cancelled => totals.cancelled += 1,
                JobState::Queued | JobState::Running => {}
            }
            match state {
                JobState::Done => g.done_total += 1,
                JobState::Failed => g.failed_total += 1,
                JobState::Cancelled => g.cancelled_total += 1,
                JobState::Queued | JobState::Running => {}
            }
        }
        drop(g);
        self.admit.notify_all();
        finished.map(|rec| {
            let slow = self.obs.record_finish(&rec.phases, rec.resumes);
            let level = match (state, slow) {
                (JobState::Failed, _) => LogLevel::Error,
                (_, true) => LogLevel::Warn,
                _ => LogLevel::Info,
            };
            let mut kv = format!(
                ",\"job\":{id},\"tenant\":\"{}\",\"state\":\"{}\",\"hits\":{hits},\"resumes\":{resumes},\"batch\":{}",
                json::escape(&rec.tenant),
                state.name(),
                rec.batch
            );
            if let Some(f) = rec.phases.finished_us {
                kv.push_str(&format!(
                    ",\"total_us\":{}",
                    f.saturating_sub(rec.phases.submitted_us)
                ));
            }
            if slow {
                kv.push_str(",\"slow\":true");
            }
            if let Some(e) = &rec.error {
                kv.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
            }
            self.obs.log(level, "job_finished", &kv);
            (rec, slow)
        })
    }

    /// Request job `id`'s drain. Running jobs stop at the next chunk
    /// boundary (checkpointed if the daemon has a checkpoint dir);
    /// queued jobs leave the queue. Returns the state observed at
    /// cancel time.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let g = self.inner.lock().unwrap();
        let e = g.jobs.get(&id).ok_or(format!("no such job {id}"))?;
        let state = e.record.state;
        e.drain.request();
        drop(g);
        self.admit.notify_all();
        Ok(state)
    }

    /// Snapshot of one record.
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(|e| e.record.clone())
    }

    /// Counts across all jobs.
    pub fn stats(&self) -> StatsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut s = StatsSnapshot {
            total: g.jobs.len(),
            rejected: g.rejected,
            done_total: g.done_total,
            failed_total: g.failed_total,
            cancelled_total: g.cancelled_total,
            tenants: g.tenants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            ..StatsSnapshot::default()
        };
        for e in g.jobs.values() {
            match e.record.state {
                JobState::Queued => s.queued += 1,
                JobState::Running => s.running += 1,
                JobState::Done => s.done += 1,
                JobState::Failed => s.failed += 1,
                JobState::Cancelled => s.cancelled += 1,
            }
        }
        s
    }

    /// The whole table as JSONL, one record per line in id order (the
    /// shutdown dump artifact).
    pub fn dump_jsonl(&self) -> String {
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in g.jobs.values() {
            out.push_str(&e.record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain() -> Arc<DrainSignal> {
        Arc::new(DrainSignal::new())
    }

    #[test]
    fn quota_counts_only_in_flight_jobs() {
        let r = Registry::new();
        let (a, _) = r.submit("acme", 10, 2, drain()).unwrap();
        let (_b, _) = r.submit("acme", 10, 2, drain()).unwrap();
        let err = r.submit("acme", 10, 2, drain()).unwrap_err();
        assert!(err.contains("quota"), "{err}");
        assert_eq!(r.stats().rejected, 1);
        // Another tenant is unaffected.
        r.submit("other", 10, 2, drain()).unwrap();
        // Finishing one frees the quota.
        assert!(r.admit(a, 4));
        r.finish(a, JobState::Done, 3, 0, None);
        r.submit("acme", 10, 2, drain()).unwrap();
    }

    #[test]
    fn admission_caps_concurrency_and_cancel_unblocks_queued() {
        let r = Registry::new();
        let (a, _) = r.submit("t", 1, 8, drain()).unwrap();
        let (b, db) = r.submit("t", 1, 8, drain()).unwrap();
        assert!(r.admit(a, 1), "first job takes the slot");
        // The second job would block; cancel it from another thread.
        db.request();
        assert!(!r.admit(b, 1), "cancelled while queued");
        assert_eq!(r.status(b).unwrap().state, JobState::Cancelled);
        r.finish(a, JobState::Done, 1, 0, None);
        assert_eq!(r.stats().done, 1);
    }

    #[test]
    fn finish_on_never_admitted_job_leaks_no_slot() {
        let r = Registry::new();
        let (a, _) = r.submit("t", 5, 4, drain()).unwrap();
        // Ack write failed before the job ever ran: finishing the
        // still-Queued job must release quota without touching the run
        // slot count.
        r.finish(a, JobState::Failed, 0, 0, Some("client gone".into()));
        assert_eq!(r.stats().running, 0);
        assert_eq!(r.stats().failed, 1);
        // And a pre-drained job never takes a slot either.
        let (b, db) = r.submit("t", 5, 4, drain()).unwrap();
        db.request();
        assert!(!r.mark_running(b));
        assert_eq!(r.status(b).unwrap().state, JobState::Cancelled);
        assert_eq!(r.stats().running, 0);
        // A live job does, and finish gives it back exactly once.
        let (c, _) = r.submit("t", 5, 4, drain()).unwrap();
        assert!(r.mark_running(c));
        assert_eq!(r.stats().running, 1);
        r.finish(c, JobState::Done, 2, 0, None);
        assert_eq!(r.stats().running, 0);
        assert!(!r.mark_running(99), "unknown job never runs");
    }

    #[test]
    fn cumulative_counters_and_tenant_totals_survive_all_transitions() {
        // Sequence every lifecycle transition and audit the cumulative
        // counters after each: done, failed, cancelled, rejected, plus
        // per-tenant running totals that never decrement.
        let r = Registry::new();

        // acme #1: full happy path with all phase stamps.
        let (a, _) = r.submit("acme", 10, 2, drain()).unwrap();
        r.mark_admitted(a);
        r.mark_gathered(a, 3);
        assert!(r.mark_running(a));
        r.record_first_hit(a);
        let (rec, slow) = r.finish(a, JobState::Done, 5, 2, None).unwrap();
        assert!(!slow, "no slow-query threshold configured");
        assert_eq!(rec.batch, 3);
        assert!(rec.phases.admitted_us.is_some());
        assert!(rec.phases.gathered_us.is_some());
        assert!(rec.phases.started_us.is_some());
        assert!(rec.phases.first_hit_us.is_some());
        assert!(rec.phases.finished_us.is_some());

        // acme #2: fails mid-run.
        let (b, _) = r.submit("acme", 10, 2, drain()).unwrap();
        assert!(r.mark_running(b));
        r.finish(b, JobState::Failed, 0, 0, Some("boom".into()));

        // acme #3 + #4 fill the quota; #5 is rejected.
        let (c, _) = r.submit("acme", 10, 2, drain()).unwrap();
        let (d, _) = r.submit("acme", 10, 2, drain()).unwrap();
        assert!(r.submit("acme", 10, 2, drain()).is_err());

        // #3 is cancelled while queued (never charged a slot).
        r.cancel(c).unwrap();
        r.finish(c, JobState::Cancelled, 0, 0, None);
        // #4 runs to completion.
        assert!(r.mark_running(d));
        r.finish(d, JobState::Done, 1, 0, None);

        // beta: one clean run, its totals independent of acme's.
        let (e, _) = r.submit("beta", 7, 2, drain()).unwrap();
        assert!(r.mark_running(e));
        r.finish(e, JobState::Done, 2, 1, None);

        let s = r.stats();
        assert_eq!((s.done, s.failed, s.cancelled), (3, 1, 1));
        assert_eq!(
            (s.done_total, s.failed_total, s.cancelled_total, s.rejected),
            (3, 1, 1, 1)
        );
        assert_eq!(s.tenants.len(), 2);
        let acme = &s.tenants[0];
        assert_eq!(acme.0, "acme");
        assert_eq!(
            acme.1,
            TenantTotals {
                submitted: 4,
                done: 2,
                failed: 1,
                cancelled: 1,
                rejected: 1,
            }
        );
        let beta = &s.tenants[1];
        assert_eq!(beta.0, "beta");
        assert_eq!(
            beta.1,
            TenantTotals {
                submitted: 1,
                done: 1,
                failed: 0,
                cancelled: 0,
                rejected: 0,
            }
        );

        // The stats line keeps legacy keys and gains cumulative ones.
        let line = s.to_json();
        assert_eq!(crate::json::field_u64(&line, "done"), Some(3));
        assert_eq!(crate::json::field_u64(&line, "done_total"), Some(3));
        assert_eq!(crate::json::field_u64(&line, "cancelled_total"), Some(1));
        assert_eq!(crate::json::field_u64(&line, "tenants"), Some(2));

        // Phase stamps serialize only when reached: the cancelled job
        // never started.
        let dump = r.dump_jsonl();
        let cancelled_line = dump
            .lines()
            .find(|l| crate::json::field_u64(l, "job") == Some(c))
            .unwrap();
        assert!(crate::json::field_u64(cancelled_line, "submitted_us").is_some());
        assert!(!cancelled_line.contains("started_us"), "{cancelled_line}");
        assert!(cancelled_line.contains("finished_us"), "{cancelled_line}");

        // No in-flight jobs remain.
        assert!(!r.has_inflight());
    }

    #[test]
    fn records_serialize_one_line_each() {
        let r = Registry::new();
        let (id, _) = r.submit("acme \"inc\"", 42, 4, drain()).unwrap();
        assert_eq!(id, 1, "ids start at 1; 0 is the solo trace id");
        r.cancel(id).unwrap();
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
        let line = dump.lines().next().unwrap();
        assert_eq!(crate::json::field_u64(line, "job"), Some(1));
        assert_eq!(
            crate::json::field_str(line, "tenant").as_deref(),
            Some("acme \"inc\"")
        );
        assert!(r.cancel(99).is_err());
    }
}
