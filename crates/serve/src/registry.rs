//! The daemon's job registry: every submitted search, its lifecycle
//! state, and the admission gate that caps concurrent runs.
//!
//! One `Mutex` guards the whole table — job turnover is measured in
//! searches per second, not millions of ops, so contention is not a
//! concern and a single lock keeps the state machine easy to audit.
//! The condvar wakes queued jobs when a running one finishes (or a
//! queued one is cancelled); waits use a timeout so a drain requested
//! through a *parent* signal (daemon shutdown, process SIGINT) is
//! noticed too, since parents don't know about our condvar.

use crate::json;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use sw_sched::DrainSignal;

/// Lifecycle of one submitted search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an admission slot.
    Queued,
    /// Holding a slot, search in flight.
    Running,
    /// Completed; hits were streamed to the submitter.
    Done,
    /// The search itself errored.
    Failed,
    /// Drained before completion (job cancel or daemon shutdown). If
    /// the daemon has a checkpoint dir the job's progress is on disk,
    /// keyed by fingerprint: resubmitting the same query resumes it.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One registry entry, as reported by `status` and the shutdown dump.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Monotone job id; doubles as the trace query id.
    pub id: u64,
    /// Tenant the job is accounted against.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Query length in residues.
    pub query_len: usize,
    /// Hits reported (0 until done).
    pub hits: usize,
    /// How many checkpoint resumes this run stitched together.
    pub resumes: u64,
    /// Failure message for [`JobState::Failed`].
    pub error: Option<String>,
}

impl JobRecord {
    /// One flat JSON line (the registry dump format; also the `status`
    /// response body).
    pub fn to_json(&self) -> String {
        let mut line = format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"state\":\"{}\",\"query_len\":{},\"hits\":{},\"resumes\":{}",
            self.id,
            json::escape(&self.tenant),
            self.state.name(),
            self.query_len,
            self.hits,
            self.resumes
        );
        if let Some(e) = &self.error {
            line.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
        }
        line.push('}');
        line
    }
}

struct Entry {
    record: JobRecord,
    drain: Arc<DrainSignal>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    running: usize,
    rejected: u64,
    jobs: BTreeMap<u64, Entry>,
}

/// Counts over the whole registry, for `stats` and the CI smoke gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs ever accepted.
    pub total: usize,
    /// Currently waiting for a slot.
    pub queued: usize,
    /// Currently holding a slot.
    pub running: usize,
    /// Completed with hits.
    pub done: usize,
    /// Errored.
    pub failed: usize,
    /// Drained before completion.
    pub cancelled: usize,
    /// Submissions bounced at the door (tenant over quota).
    pub rejected: u64,
}

impl StatsSnapshot {
    /// One flat JSON line (the `stats` response body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"jobs\":{},\"queued\":{},\"running\":{},\"done\":{},\"failed\":{},\"cancelled\":{},\"rejected\":{}}}",
            self.total, self.queued, self.running, self.done, self.failed, self.cancelled,
            self.rejected
        )
    }
}

/// Thread-safe job table + admission gate. See the module docs for the
/// locking story.
pub struct Registry {
    inner: Mutex<Inner>,
    admit: Condvar,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry; ids start at 1 (`0` is the solo-run trace id,
    /// never a job).
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            admit: Condvar::new(),
        }
    }

    /// Accept a job, enforcing the per-tenant in-flight quota. Returns
    /// the job id and its drain signal, or the rejection message.
    pub fn submit(
        &self,
        tenant: &str,
        query_len: usize,
        quota: usize,
        drain: Arc<DrainSignal>,
    ) -> Result<(u64, Arc<DrainSignal>), String> {
        let mut g = self.inner.lock().unwrap();
        let in_flight = g
            .jobs
            .values()
            .filter(|e| {
                e.record.tenant == tenant
                    && matches!(e.record.state, JobState::Queued | JobState::Running)
            })
            .count();
        if in_flight >= quota {
            g.rejected += 1;
            return Err(format!(
                "tenant '{tenant}' quota exceeded ({in_flight} jobs in flight, quota {quota})"
            ));
        }
        let id = g.next_id;
        g.next_id += 1;
        g.jobs.insert(
            id,
            Entry {
                record: JobRecord {
                    id,
                    tenant: tenant.to_string(),
                    state: JobState::Queued,
                    query_len,
                    hits: 0,
                    resumes: 0,
                    error: None,
                },
                drain: Arc::clone(&drain),
            },
        );
        Ok((id, drain))
    }

    /// Block until job `id` gets one of `max_concurrent` run slots.
    /// Returns `false` (marking the job cancelled) if its drain — or a
    /// parent drain, hence the timed wait — fires first.
    pub fn admit(&self, id: u64, max_concurrent: usize) -> bool {
        let mut g = self.inner.lock().unwrap();
        loop {
            let drained = g.jobs.get(&id).is_none_or(|e| e.drain.is_requested());
            if drained {
                if let Some(e) = g.jobs.get_mut(&id) {
                    e.record.state = JobState::Cancelled;
                }
                return false;
            }
            if g.running < max_concurrent {
                g.running += 1;
                if let Some(e) = g.jobs.get_mut(&id) {
                    e.record.state = JobState::Running;
                }
                return true;
            }
            let (guard, _) = self
                .admit
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap();
            g = guard;
        }
    }

    /// Move job `id` to `Running` and charge a run slot — unless its
    /// drain already fired, in which case the job is marked `Cancelled`
    /// and no slot is taken. The batching collector calls this for every
    /// member of a shared region just before the region starts; unlike
    /// [`Registry::admit`] it never blocks, because the collector itself
    /// is the concurrency gate (one region at a time, `max_concurrent`
    /// queries per region).
    pub fn mark_running(&self, id: u64) -> bool {
        let mut g = self.inner.lock().unwrap();
        let Some(e) = g.jobs.get_mut(&id) else {
            return false;
        };
        if e.drain.is_requested() {
            e.record.state = JobState::Cancelled;
            return false;
        }
        e.record.state = JobState::Running;
        g.running += 1;
        true
    }

    /// Record how job `id` ended, releasing its run slot if it held one.
    /// Safe on jobs that never reached `Running` (ack-write failure,
    /// cancelled while queued): the slot count only drops when the job
    /// actually charged it.
    pub fn finish(
        &self,
        id: u64,
        state: JobState,
        hits: usize,
        resumes: u64,
        error: Option<String>,
    ) {
        let mut g = self.inner.lock().unwrap();
        let mut was_running = false;
        if let Some(e) = g.jobs.get_mut(&id) {
            was_running = e.record.state == JobState::Running;
            e.record.state = state;
            e.record.hits = hits;
            e.record.resumes = resumes;
            e.record.error = error;
        }
        if was_running {
            g.running = g.running.saturating_sub(1);
        }
        drop(g);
        self.admit.notify_all();
    }

    /// Request job `id`'s drain. Running jobs stop at the next chunk
    /// boundary (checkpointed if the daemon has a checkpoint dir);
    /// queued jobs leave the queue. Returns the state observed at
    /// cancel time.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let g = self.inner.lock().unwrap();
        let e = g.jobs.get(&id).ok_or(format!("no such job {id}"))?;
        let state = e.record.state;
        e.drain.request();
        drop(g);
        self.admit.notify_all();
        Ok(state)
    }

    /// Snapshot of one record.
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(|e| e.record.clone())
    }

    /// Counts across all jobs.
    pub fn stats(&self) -> StatsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut s = StatsSnapshot {
            total: g.jobs.len(),
            rejected: g.rejected,
            ..StatsSnapshot::default()
        };
        for e in g.jobs.values() {
            match e.record.state {
                JobState::Queued => s.queued += 1,
                JobState::Running => s.running += 1,
                JobState::Done => s.done += 1,
                JobState::Failed => s.failed += 1,
                JobState::Cancelled => s.cancelled += 1,
            }
        }
        s
    }

    /// The whole table as JSONL, one record per line in id order (the
    /// shutdown dump artifact).
    pub fn dump_jsonl(&self) -> String {
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in g.jobs.values() {
            out.push_str(&e.record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain() -> Arc<DrainSignal> {
        Arc::new(DrainSignal::new())
    }

    #[test]
    fn quota_counts_only_in_flight_jobs() {
        let r = Registry::new();
        let (a, _) = r.submit("acme", 10, 2, drain()).unwrap();
        let (_b, _) = r.submit("acme", 10, 2, drain()).unwrap();
        let err = r.submit("acme", 10, 2, drain()).unwrap_err();
        assert!(err.contains("quota"), "{err}");
        assert_eq!(r.stats().rejected, 1);
        // Another tenant is unaffected.
        r.submit("other", 10, 2, drain()).unwrap();
        // Finishing one frees the quota.
        assert!(r.admit(a, 4));
        r.finish(a, JobState::Done, 3, 0, None);
        r.submit("acme", 10, 2, drain()).unwrap();
    }

    #[test]
    fn admission_caps_concurrency_and_cancel_unblocks_queued() {
        let r = Registry::new();
        let (a, _) = r.submit("t", 1, 8, drain()).unwrap();
        let (b, db) = r.submit("t", 1, 8, drain()).unwrap();
        assert!(r.admit(a, 1), "first job takes the slot");
        // The second job would block; cancel it from another thread.
        db.request();
        assert!(!r.admit(b, 1), "cancelled while queued");
        assert_eq!(r.status(b).unwrap().state, JobState::Cancelled);
        r.finish(a, JobState::Done, 1, 0, None);
        assert_eq!(r.stats().done, 1);
    }

    #[test]
    fn finish_on_never_admitted_job_leaks_no_slot() {
        let r = Registry::new();
        let (a, _) = r.submit("t", 5, 4, drain()).unwrap();
        // Ack write failed before the job ever ran: finishing the
        // still-Queued job must release quota without touching the run
        // slot count.
        r.finish(a, JobState::Failed, 0, 0, Some("client gone".into()));
        assert_eq!(r.stats().running, 0);
        assert_eq!(r.stats().failed, 1);
        // And a pre-drained job never takes a slot either.
        let (b, db) = r.submit("t", 5, 4, drain()).unwrap();
        db.request();
        assert!(!r.mark_running(b));
        assert_eq!(r.status(b).unwrap().state, JobState::Cancelled);
        assert_eq!(r.stats().running, 0);
        // A live job does, and finish gives it back exactly once.
        let (c, _) = r.submit("t", 5, 4, drain()).unwrap();
        assert!(r.mark_running(c));
        assert_eq!(r.stats().running, 1);
        r.finish(c, JobState::Done, 2, 0, None);
        assert_eq!(r.stats().running, 0);
        assert!(!r.mark_running(99), "unknown job never runs");
    }

    #[test]
    fn records_serialize_one_line_each() {
        let r = Registry::new();
        let (id, _) = r.submit("acme \"inc\"", 42, 4, drain()).unwrap();
        assert_eq!(id, 1, "ids start at 1; 0 is the solo trace id");
        r.cancel(id).unwrap();
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
        let line = dump.lines().next().unwrap();
        assert_eq!(crate::json::field_u64(line, "job"), Some(1));
        assert_eq!(
            crate::json::field_str(line, "tenant").as_deref(),
            Some("acme \"inc\"")
        );
        assert!(r.cancel(99).is_err());
    }
}
