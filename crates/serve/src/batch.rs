//! The cross-query batching collector: the queue between connection
//! threads and the one thread that runs shared dual-pool regions.
//!
//! Connection handlers park accepted submits here; the collector thread
//! waits for the first arrival, then sleeps one gather window so
//! concurrent submits coalesce, then takes up to `max_concurrent`
//! queries and runs them through a single `search_many_resumable`
//! region over the resident database. Each pending job carries its own
//! reply channel — the demux path back to exactly one connection — and
//! its own scoped drain, so cancelling one query removes only that
//! query's tasks from the shared region.
//!
//! Shutdown closes the queue: `collect` hands back whatever is still
//! queued (the collector replies `cancelled` to each, since their
//! drains are scoped under the daemon signal) and then returns `None`,
//! and any later `enqueue` is refused so no connection can park a job
//! nobody will ever run.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use sw_sched::{DrainSignal, FaultSpec};

/// One accepted submit, parked until a region picks it up.
pub(crate) struct PendingJob {
    /// Registry job id; doubles as the trace query tag.
    pub id: u64,
    /// Encoded query residues.
    pub residues: Vec<u8>,
    /// Hits to stream back.
    pub top: usize,
    /// Optional delay drill; the first one in a region arms its
    /// injector.
    pub drill: Option<FaultSpec>,
    /// Per-job drain, scoped under the daemon shutdown signal.
    pub drain: Arc<DrainSignal>,
    /// Demux channel back to the submitting connection.
    pub reply: mpsc::Sender<JobReply>,
}

/// What the collector sends back to the connection thread. The registry
/// record is final before this is sent, so a client that hangs up while
/// the reply streams cannot wedge the job state.
pub(crate) enum JobReply {
    Done {
        /// `(score, global db index, header)` per hit. The index is
        /// global: shard workers add their shard base so a coordinator
        /// can merge per-shard streams with the unsharded tie-break.
        hits: Vec<(i64, u64, String)>,
        resumes: u64,
        batch: usize,
    },
    Cancelled {
        resumes: u64,
        batch: usize,
    },
    Failed {
        error: String,
    },
}

struct State {
    queue: VecDeque<PendingJob>,
    closed: bool,
}

/// The queue itself. One mutex + condvar, same audit-friendly shape as
/// the registry.
pub(crate) struct Batcher {
    inner: Mutex<State>,
    wake: Condvar,
}

impl Batcher {
    pub fn new() -> Self {
        Batcher {
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Park a job for the next region. `false` means the queue already
    /// closed (daemon draining) and the caller must cancel the job
    /// itself — nobody will reply on its channel.
    pub fn enqueue(&self, job: PendingJob) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return false;
        }
        g.queue.push_back(job);
        drop(g);
        self.wake.notify_all();
        true
    }

    /// Jobs currently parked waiting for a region — the queue-depth
    /// gauge the health probe reports against the region cap.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Collector side: block until at least one job is queued (or
    /// shutdown fires), let the gather window elapse so concurrent
    /// submits join the same region, then take up to `max` jobs in
    /// arrival order. Returns `None` once shutdown has fired and the
    /// queue is empty — the collector's exit condition. On shutdown
    /// with jobs still queued, returns them (closing the queue first)
    /// so the caller can cancel-reply each one.
    pub fn collect(
        &self,
        max: usize,
        window: Duration,
        shutdown: &DrainSignal,
    ) -> Option<Vec<PendingJob>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if shutdown.is_requested() {
                g.closed = true;
                let rest: Vec<PendingJob> = g.queue.drain(..).collect();
                return if rest.is_empty() { None } else { Some(rest) };
            }
            if !g.queue.is_empty() {
                break;
            }
            // Timed wait: shutdown may arrive through a parent signal
            // that knows nothing of our condvar.
            let (guard, _) = self
                .wake
                .wait_timeout(g, Duration::from_millis(20))
                .unwrap();
            g = guard;
        }
        drop(g);
        std::thread::sleep(window);
        let mut g = self.inner.lock().unwrap();
        // Shutdown may have fired during the gather window. Launching a
        // region now would race the drain, and leaving the queue open
        // lets a late submit park where no collector will ever look —
        // so close first and hand everything back for cancel replies.
        if shutdown.is_requested() {
            g.closed = true;
            let rest: Vec<PendingJob> = g.queue.drain(..).collect();
            return if rest.is_empty() { None } else { Some(rest) };
        }
        let n = g.queue.len().min(max.max(1));
        Some(g.queue.drain(..n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, reply: mpsc::Sender<JobReply>) -> PendingJob {
        PendingJob {
            id,
            residues: vec![1, 2, 3],
            top: 5,
            drill: None,
            drain: Arc::new(DrainSignal::new()),
            reply,
        }
    }

    #[test]
    fn gather_window_coalesces_and_cap_splits() {
        static OFF: DrainSignal = DrainSignal::new();
        let b = Batcher::new();
        let (tx, _rx) = mpsc::channel();
        for id in 1..=5 {
            assert!(b.enqueue(job(id, tx.clone())));
        }
        let first = b.collect(4, Duration::ZERO, &OFF).unwrap();
        assert_eq!(
            first.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4],
            "arrival order, capped at max_concurrent"
        );
        let second = b.collect(4, Duration::ZERO, &OFF).unwrap();
        assert_eq!(second.len(), 1, "overflow lands in the next region");
    }

    #[test]
    fn shutdown_mid_window_closes_queue() {
        // Shutdown landing INSIDE the gather window (after the pre-sleep
        // check) must still close the queue: otherwise the drained jobs
        // launch a region racing the drain, and a submit arriving after
        // this collect parks forever in a queue nobody reads again.
        static MID: DrainSignal = DrainSignal::new();
        let b = Batcher::new();
        let (tx, _rx) = mpsc::channel();
        assert!(b.enqueue(job(1, tx.clone())));
        std::thread::scope(|s| {
            let t = s.spawn(|| b.collect(4, Duration::from_millis(200), &MID));
            std::thread::sleep(Duration::from_millis(50));
            MID.request();
            let drained = t.join().unwrap().expect("parked job hands back");
            assert_eq!(drained.len(), 1);
        });
        assert!(
            !b.enqueue(job(2, tx)),
            "queue must close when shutdown lands inside the gather window"
        );
        assert!(b.collect(4, Duration::ZERO, &MID).is_none(), "then closed");
    }

    #[test]
    fn shutdown_drains_queue_then_closes() {
        static DOWN: DrainSignal = DrainSignal::new();
        let b = Batcher::new();
        let (tx, _rx) = mpsc::channel();
        assert!(b.enqueue(job(1, tx.clone())));
        DOWN.request();
        let last = b.collect(4, Duration::ZERO, &DOWN).unwrap();
        assert_eq!(last.len(), 1, "queued jobs hand back for cancel replies");
        assert!(b.collect(4, Duration::ZERO, &DOWN).is_none(), "then closed");
        assert!(!b.enqueue(job(2, tx)), "no parking after close");
    }
}
