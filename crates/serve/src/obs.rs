//! `sw-obs` — the daemon-lifetime observability plane.
//!
//! Three concerns live here, all fed by the lifecycle stamps the
//! registry records on every job:
//!
//! 1. **Aggregation** ([`Obs`]): fixed-bucket latency histograms per
//!    request phase (admit / gather / run / first-hit / total), SLO
//!    counters (rejections, cancels, degraded runs, resumes, checkpoint
//!    writes, broken-pipe streams, slow queries) and a windowed
//!    aggregate-GCUPS series, rendered as a Prometheus text snapshot by
//!    [`Obs::prometheus`] for the `{"op":"metrics"}` wire operation and
//!    the `--metrics-file` periodic dump.
//! 2. **Structured ops log** ([`Obs::log`]): one flat JSON line per
//!    lifecycle transition, leveled (`--log-level`), to stderr or
//!    `--log-file`. The slow-query path (`--slow-query-ms`) rides on
//!    the same sink and counts into `sw_serve_slow_queries_total`.
//! 3. **Health** ([`Obs::health_json`]): readiness/liveness for the
//!    `{"op":"health"}` operation — ready only once the snapshot is
//!    digest-verified and resident, the collector thread is alive, and
//!    the daemon is not draining.
//!
//! Everything is lock-cheap by construction: the hot path takes one
//! short mutex per transition (a handful of integer adds), and the
//! scrape renders from a clone of the aggregate under the same lock.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sw_trace::export::Histogram;

use crate::registry::StatsSnapshot;

/// Phase-latency bucket bounds (µs). Wider than the kernel-level
/// `HIST_BUCKETS_US` table because daemon phases span from
/// sub-millisecond admission to multi-second drilled runs.
pub static PHASE_BUCKETS_US: [u64; 12] = [
    100,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    30_000_000,
    120_000_000,
];

/// Region-size bucket bounds (queries coalesced per dual-pool region).
pub static REGION_SIZE_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Width of one aggregate-GCUPS window (µs).
pub const GCUPS_WINDOW_US: u64 = 1_000_000;

/// Windows retained for the `sw_serve_gcups_window` series.
const GCUPS_WINDOWS_KEPT: usize = 64;

/// Ops-log severity. Ordered so `Error < Warn < Info < Debug`; a sink
/// configured at level L emits every line with level ≤ L, and `Off`
/// silences the log entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No ops log.
    #[default]
    Off,
    /// Failures only (broken pipes, engine errors).
    Error,
    /// Errors plus degraded runs, slow queries, drains.
    Warn,
    /// One line per lifecycle transition (the operational default).
    Info,
    /// Everything, including per-region gather detail.
    Debug,
}

impl LogLevel {
    /// Parse a CLI-facing level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// Stable lowercase name (what log lines carry).
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// Observability configuration carried by `ServeConfig`.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Ops-log threshold.
    pub log_level: LogLevel,
    /// Ops-log destination (stderr when `None`).
    pub log_file: Option<PathBuf>,
    /// Slow-query threshold in milliseconds; `None` disables the
    /// slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Content digest of the resident snapshot, when it was
    /// digest-verified at load (surfaces in health as
    /// `snapshot_verified` / `snapshot_digest`).
    pub snapshot_digest: Option<u64>,
    /// Set when this daemon is a shard worker: every Prometheus series
    /// gains a `shard="<index>"` label and health reports the shard
    /// placement, so a coordinator (or an aggregating scrape) can tell
    /// workers apart.
    pub shard: Option<ShardRole>,
}

/// The shard a worker daemon serves, as the obs plane reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRole {
    /// Shard index, `0..count`.
    pub index: u64,
    /// Total shards in the split.
    pub count: u64,
    /// Global id of this shard's first sequence.
    pub base: u64,
}

/// Monotonic lifecycle stamps for one job, µs since the daemon epoch.
/// `submitted_us` is always present (stamped by `Registry::submit`);
/// later phases stay `None` on paths that never reach them (a job
/// cancelled while parked never starts; a cancelled run streams no
/// first hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phases {
    /// Registry accepted the submit.
    pub submitted_us: u64,
    /// Ack streamed back to the client.
    pub admitted_us: Option<u64>,
    /// Collector pulled the job out of the gather window.
    pub gathered_us: Option<u64>,
    /// Dual-pool region started executing the job.
    pub started_us: Option<u64>,
    /// First hit line streamed to the client.
    pub first_hit_us: Option<u64>,
    /// Terminal state reached.
    pub finished_us: Option<u64>,
}

#[derive(Debug, Clone)]
struct Agg {
    admit: Histogram,
    gather: Histogram,
    run: Histogram,
    first_hit: Histogram,
    total: Histogram,
    region_size: Histogram,
    resumes: u64,
    degraded_runs: u64,
    checkpoint_writes: u64,
    broken_pipes: u64,
    slow_queries: u64,
    connection_evictions: u64,
    regions: u64,
    region_queries: u64,
    cells_total: u64,
    /// `(window index, cells finishing in window)`, ascending, capped
    /// at [`GCUPS_WINDOWS_KEPT`].
    windows: Vec<(u64, u64)>,
}

impl Default for Agg {
    fn default() -> Self {
        Agg {
            admit: Histogram::new(&PHASE_BUCKETS_US),
            gather: Histogram::new(&PHASE_BUCKETS_US),
            run: Histogram::new(&PHASE_BUCKETS_US),
            first_hit: Histogram::new(&PHASE_BUCKETS_US),
            total: Histogram::new(&PHASE_BUCKETS_US),
            region_size: Histogram::new(&REGION_SIZE_BUCKETS),
            resumes: 0,
            degraded_runs: 0,
            checkpoint_writes: 0,
            broken_pipes: 0,
            slow_queries: 0,
            connection_evictions: 0,
            regions: 0,
            region_queries: 0,
            cells_total: 0,
            windows: Vec::new(),
        }
    }
}

enum Sink {
    Stderr,
    File(std::fs::File),
}

/// The daemon-lifetime aggregator + ops log + health state. One
/// instance per daemon, shared by the registry, the collector and
/// every connection thread through an `Arc`.
pub struct Obs {
    epoch: Instant,
    config: ObsConfig,
    ready: AtomicBool,
    draining: AtomicBool,
    collector_alive: AtomicBool,
    agg: Mutex<Agg>,
    log: Mutex<Sink>,
}

impl Obs {
    /// Build the plane from config. The daemon starts *not ready*:
    /// readiness is granted by `serve()` only after the snapshot is
    /// loaded and the worker scope is up ([`Obs::set_ready`]).
    pub fn new(config: ObsConfig) -> Obs {
        let sink = match &config.log_file {
            Some(path) => OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map(Sink::File)
                .unwrap_or(Sink::Stderr),
            None => Sink::Stderr,
        };
        Obs {
            epoch: Instant::now(),
            config,
            ready: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            collector_alive: AtomicBool::new(false),
            agg: Mutex::new(Agg::default()),
            log: Mutex::new(sink),
        }
    }

    /// A silent plane (log off, no thresholds) — what `Registry::new`
    /// wires up for embedders and tests that don't care about obs.
    pub fn disabled() -> Obs {
        Obs::new(ObsConfig::default())
    }

    /// µs since the daemon epoch — the clock every lifecycle stamp and
    /// log line shares.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Grant/revoke readiness (snapshot resident + digest verified).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Mark the daemon as draining (shutdown requested, in-flight jobs
    /// finishing). A draining daemon reports `ready:false`.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::SeqCst);
    }

    /// Track whether the collector thread is running; health reports
    /// `collector_alive` and readiness requires it.
    pub fn set_collector_alive(&self, alive: bool) {
        self.collector_alive.store(alive, Ordering::SeqCst);
    }

    /// Whether a drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether the collector thread is running.
    pub fn is_collector_alive(&self) -> bool {
        self.collector_alive.load(Ordering::SeqCst)
    }

    /// The slow-query threshold in µs, when configured.
    pub fn slow_query_us(&self) -> Option<u64> {
        self.config.slow_query_ms.map(|ms| ms.saturating_mul(1_000))
    }

    /// Emit one structured log line when `level` clears the configured
    /// threshold. `kv` is a pre-rendered JSON fragment starting with a
    /// comma (`,"job":3,"tenant":"acme"`) or empty; callers escape
    /// their own strings with [`crate::json::escape`]. Sink errors are
    /// deliberately ignored — observability must never take the
    /// daemon down.
    pub fn log(&self, level: LogLevel, event: &str, kv: &str) {
        if level == LogLevel::Off || level > self.config.log_level {
            return;
        }
        let line = format!(
            "{{\"t_us\":{},\"level\":\"{}\",\"event\":\"{}\"{}}}",
            self.now_us(),
            level.name(),
            event,
            kv
        );
        if let Ok(mut sink) = self.log.lock() {
            let _ = match &mut *sink {
                Sink::Stderr => writeln!(std::io::stderr().lock(), "{line}"),
                Sink::File(f) => writeln!(f, "{line}"),
            };
        }
    }

    /// Record one coalesced region of `queries` jobs.
    pub fn on_region(&self, queries: usize) {
        let mut agg = self.agg.lock().expect("obs agg");
        agg.regions += 1;
        agg.region_queries += queries as u64;
        agg.region_size.record(queries as u64);
    }

    /// Credit `cells` DP cells to the GCUPS window containing `at_us`.
    pub fn on_cells(&self, cells: u64, at_us: u64) {
        if cells == 0 {
            return;
        }
        let idx = at_us / GCUPS_WINDOW_US;
        let mut agg = self.agg.lock().expect("obs agg");
        agg.cells_total += cells;
        match agg.windows.iter_mut().find(|(w, _)| *w == idx) {
            Some(slot) => slot.1 += cells,
            None => {
                agg.windows.push((idx, cells));
                agg.windows.sort_unstable_by_key(|&(w, _)| w);
                let excess = agg.windows.len().saturating_sub(GCUPS_WINDOWS_KEPT);
                if excess > 0 {
                    agg.windows.drain(..excess);
                }
            }
        }
    }

    /// Count a degraded run (a device pool was retired mid-region).
    pub fn on_degraded(&self) {
        self.agg.lock().expect("obs agg").degraded_runs += 1;
    }

    /// Count checkpoint files written by a region.
    pub fn on_checkpoint_writes(&self, n: u64) {
        if n > 0 {
            self.agg.lock().expect("obs agg").checkpoint_writes += n;
        }
    }

    /// Count a reply stream that died mid-write (client gone).
    pub fn on_broken_pipe(&self) {
        self.agg.lock().expect("obs agg").broken_pipes += 1;
    }

    /// Count a connection evicted for not completing its request line
    /// within the per-connection deadline (half-line stalled client).
    pub fn on_connection_evicted(&self) {
        self.agg.lock().expect("obs agg").connection_evictions += 1;
    }

    /// Record one submit-to-first-hit latency. Recorded at streaming
    /// time, not folded from the phase stamps in [`Obs::record_finish`]:
    /// the collector finishes the registry record *before* the reply
    /// streams, so the first-hit stamp lands after the finish fold.
    pub fn on_first_hit(&self, delta_us: u64) {
        self.agg.lock().expect("obs agg").first_hit.record(delta_us);
    }

    /// Fold one finished job's phase stamps into the lifetime
    /// histograms (`first_hit_us` is recorded separately through
    /// [`Obs::on_first_hit`] — it is stamped after the finish).
    /// Returns `true` when the job's total latency crossed the
    /// slow-query threshold (the caller then dumps its timeline).
    pub fn record_finish(&self, phases: &Phases, resumes: u64) -> bool {
        let sub = phases.submitted_us;
        let gap = |a: Option<u64>, b: u64| a.map(|v| v.saturating_sub(b));
        let mut agg = self.agg.lock().expect("obs agg");
        if let Some(d) = gap(phases.admitted_us, sub) {
            agg.admit.record(d);
        }
        if let (Some(g), Some(a)) = (phases.gathered_us, phases.admitted_us) {
            agg.gather.record(g.saturating_sub(a));
        }
        if let (Some(f), Some(s)) = (phases.finished_us, phases.started_us) {
            agg.run.record(f.saturating_sub(s));
        }
        let total = gap(phases.finished_us, sub);
        if let Some(d) = total {
            agg.total.record(d);
        }
        agg.resumes += resumes;
        let slow = match (self.slow_query_us(), total) {
            (Some(limit), Some(d)) => d > limit,
            _ => false,
        };
        if slow {
            agg.slow_queries += 1;
        }
        slow
    }

    /// Render the `{"op":"health"}` reply: liveness is answering at
    /// all; readiness is snapshot-resident + collector alive + not
    /// draining. `parked` is the batcher's queue depth, reported
    /// against `queue_cap` (the region size cap).
    pub fn health_json(&self, stats: &StatsSnapshot, queue_cap: usize, parked: usize) -> String {
        let ready = self.ready.load(Ordering::SeqCst)
            && self.collector_alive.load(Ordering::SeqCst)
            && !self.draining.load(Ordering::SeqCst);
        let mut out = format!(
            "{{\"ok\":true,\"ready\":{},\"live\":true,\"draining\":{},\"engine_resident\":{},\"collector_alive\":{},\"snapshot_verified\":{},\"queued\":{},\"running\":{},\"parked\":{},\"queue_cap\":{},\"uptime_us\":{}",
            ready,
            self.draining.load(Ordering::SeqCst),
            self.ready.load(Ordering::SeqCst),
            self.collector_alive.load(Ordering::SeqCst),
            self.config.snapshot_digest.is_some(),
            stats.queued,
            stats.running,
            parked,
            queue_cap,
            self.now_us(),
        );
        if let Some(d) = self.config.snapshot_digest {
            out.push_str(&format!(",\"snapshot_digest\":\"{d:016x}\""));
        }
        if let Some(s) = self.config.shard {
            out.push_str(&format!(
                ",\"shard\":{},\"shard_count\":{},\"shard_base\":{}",
                s.index, s.count, s.base
            ));
        }
        out.push('}');
        out
    }

    /// Render the daemon-lifetime Prometheus snapshot for
    /// `{"op":"metrics"}` and `--metrics-file`. Validator-clean by
    /// construction (`sw_trace::validate::validate_prometheus_strict`).
    pub fn prometheus(&self, stats: &StatsSnapshot, queue_cap: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8192);
        let agg = self.agg.lock().expect("obs agg").clone();

        // Shard workers label every series so an aggregating scrape
        // (or the coordinator's debugging eye) can tell workers apart;
        // an unsharded daemon emits the label-free families unchanged.
        let shard_label: Option<String> =
            self.config.shard.map(|s| format!("shard=\"{}\"", s.index));
        // Label body prefix for families that already carry labels.
        let shard_prefix: String = shard_label
            .as_ref()
            .map(|l| format!("{l},"))
            .unwrap_or_default();

        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            match &shard_label {
                Some(l) => {
                    let _ = writeln!(out, "{name}{{{l}}} {v}");
                }
                None => {
                    let _ = writeln!(out, "{name} {v}");
                }
            }
        };
        counter(
            &mut out,
            "sw_serve_submitted_total",
            "submit requests admitted to the registry",
            stats.total as u64,
        );
        counter(
            &mut out,
            "sw_serve_done_total",
            "jobs finished successfully since daemon start",
            stats.done_total,
        );
        counter(
            &mut out,
            "sw_serve_failed_total",
            "jobs that finished in failure since daemon start",
            stats.failed_total,
        );
        counter(
            &mut out,
            "sw_serve_cancelled_total",
            "jobs cancelled since daemon start",
            stats.cancelled_total,
        );
        counter(
            &mut out,
            "sw_serve_rejected_total",
            "submits bounced at the door (tenant over quota)",
            stats.rejected,
        );
        counter(
            &mut out,
            "sw_serve_resumes_total",
            "checkpoint resumes performed by finished jobs",
            agg.resumes,
        );
        counter(
            &mut out,
            "sw_serve_degraded_runs_total",
            "finished runs that lost a device pool",
            agg.degraded_runs,
        );
        counter(
            &mut out,
            "sw_serve_checkpoint_writes_total",
            "checkpoint files written by regions",
            agg.checkpoint_writes,
        );
        counter(
            &mut out,
            "sw_serve_broken_pipe_total",
            "reply streams that died mid-write",
            agg.broken_pipes,
        );
        counter(
            &mut out,
            "sw_serve_slow_queries_total",
            "jobs whose total latency crossed --slow-query-ms",
            agg.slow_queries,
        );
        counter(
            &mut out,
            "sw_serve_connection_evictions_total",
            "connections evicted for stalling before a full request line",
            agg.connection_evictions,
        );
        counter(
            &mut out,
            "sw_serve_regions_total",
            "dual-pool regions executed",
            agg.regions,
        );
        counter(
            &mut out,
            "sw_serve_region_queries_total",
            "jobs executed through regions (coalesced or solo)",
            agg.region_queries,
        );
        counter(
            &mut out,
            "sw_serve_cells_total",
            "DP cells computed across all regions",
            agg.cells_total,
        );

        let _ = writeln!(
            out,
            "# HELP sw_serve_tenant_jobs_total per-tenant lifecycle outcomes"
        );
        let _ = writeln!(out, "# TYPE sw_serve_tenant_jobs_total counter");
        for (tenant, t) in &stats.tenants {
            let esc = prom_escape(tenant);
            for (outcome, v) in [
                ("submitted", t.submitted),
                ("done", t.done),
                ("failed", t.failed),
                ("cancelled", t.cancelled),
                ("rejected", t.rejected),
            ] {
                let _ = writeln!(
                    out,
                    "sw_serve_tenant_jobs_total{{{shard_prefix}tenant=\"{esc}\",outcome=\"{outcome}\"}} {v}"
                );
            }
        }

        let gauge = |out: &mut String, name: &str, help: &str, v: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            match &shard_label {
                Some(l) => {
                    let _ = writeln!(out, "{name}{{{l}}} {v}");
                }
                None => {
                    let _ = writeln!(out, "{name} {v}");
                }
            }
        };
        let ready = self.ready.load(Ordering::SeqCst)
            && self.collector_alive.load(Ordering::SeqCst)
            && !self.draining.load(Ordering::SeqCst);
        gauge(
            &mut out,
            "sw_serve_ready",
            "1 when the daemon would pass a readiness probe",
            u64::from(ready).to_string(),
        );
        gauge(
            &mut out,
            "sw_serve_draining",
            "1 while shutdown drains in-flight jobs",
            u64::from(self.draining.load(Ordering::SeqCst)).to_string(),
        );
        gauge(
            &mut out,
            "sw_serve_queued",
            "jobs waiting for the collector",
            stats.queued.to_string(),
        );
        gauge(
            &mut out,
            "sw_serve_running",
            "jobs currently executing in a region",
            stats.running.to_string(),
        );
        gauge(
            &mut out,
            "sw_serve_queue_cap",
            "max queries per coalesced region (--max-concurrent)",
            queue_cap.to_string(),
        );
        gauge(
            &mut out,
            "sw_serve_uptime_seconds",
            "seconds since the daemon epoch",
            format!("{:.3}", self.now_us() as f64 / 1e6),
        );

        let hist = |out: &mut String, name: &str, help: &str, h: &Histogram| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            h.write_prom(out, name, shard_label.as_deref().unwrap_or(""));
        };
        hist(
            &mut out,
            "sw_serve_admit_us",
            "submit accepted to ack streamed",
            &agg.admit,
        );
        hist(
            &mut out,
            "sw_serve_gather_us",
            "ack to gather-window exit (batch coalescing wait)",
            &agg.gather,
        );
        hist(
            &mut out,
            "sw_serve_run_us",
            "region start to terminal state",
            &agg.run,
        );
        hist(
            &mut out,
            "sw_serve_first_hit_us",
            "submit accepted to first hit streamed",
            &agg.first_hit,
        );
        hist(
            &mut out,
            "sw_serve_total_us",
            "submit accepted to terminal state",
            &agg.total,
        );
        hist(
            &mut out,
            "sw_serve_region_size",
            "queries coalesced per region",
            &agg.region_size,
        );

        let _ = writeln!(
            out,
            "# HELP sw_serve_gcups_window aggregate GCUPS over fixed windows ({GCUPS_WINDOW_US} us wide)"
        );
        let _ = writeln!(out, "# TYPE sw_serve_gcups_window gauge");
        let window_secs = GCUPS_WINDOW_US as f64 / 1e6;
        for (idx, cells) in &agg.windows {
            let _ = writeln!(
                out,
                "sw_serve_gcups_window{{{shard_prefix}start_us=\"{}\"}} {:.6}",
                idx * GCUPS_WINDOW_US,
                *cells as f64 / window_secs / 1e9
            );
        }
        out
    }
}

/// Escape a label value for the Prometheus exposition format (`\\`,
/// `\"`, `\n` — the only escapes the format defines).
/// Render the *coordinator's* own Prometheus snapshot after a sharded
/// search: transport and failover counters no single worker can see
/// (`search --shards --metrics-out` writes this file; the CI net-smoke
/// job strict-validates it). Kept in the `sw_serve_` namespace so one
/// scrape config covers daemons and coordinators alike.
pub fn coord_prometheus(
    shards: u64,
    requeues: u64,
    failovers: u64,
    net_retries: u64,
    journal_skipped: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    };
    counter(
        &mut out,
        "sw_serve_shard_requeues_total",
        "Shard executions requeued after a failed attempt",
        requeues,
    );
    counter(
        &mut out,
        "sw_serve_shard_failovers_total",
        "Requeues that moved a shard to a replica endpoint",
        failovers,
    );
    counter(
        &mut out,
        "sw_serve_net_retries_total",
        "Connect retries absorbed by the transport backoff",
        net_retries,
    );
    counter(
        &mut out,
        "sw_serve_coord_journal_skipped_total",
        "Shards skipped on --resume-coord because the journal had committed them",
        journal_skipped,
    );
    let _ = writeln!(
        out,
        "# HELP sw_serve_coord_shards Shards coordinated by this search"
    );
    let _ = writeln!(out, "# TYPE sw_serve_coord_shards gauge");
    let _ = writeln!(out, "sw_serve_coord_shards {shards}");
    out
}

fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TenantTotals;
    use sw_trace::validate::validate_prometheus_strict;

    fn stats_with_tenant() -> StatsSnapshot {
        StatsSnapshot {
            total: 4,
            queued: 1,
            running: 1,
            done: 2,
            failed: 0,
            cancelled: 0,
            rejected: 1,
            done_total: 2,
            failed_total: 0,
            cancelled_total: 0,
            tenants: vec![(
                "ac\"me".to_string(),
                TenantTotals {
                    submitted: 4,
                    done: 2,
                    failed: 0,
                    cancelled: 0,
                    rejected: 1,
                },
            )],
        }
    }

    #[test]
    fn readiness_requires_grant_collector_and_no_drain() {
        let obs = Obs::disabled();
        let stats = StatsSnapshot::default();
        // Before the snapshot is loaded: live but not ready.
        let h = obs.health_json(&stats, 4, 0);
        assert!(h.contains("\"ready\":false"), "{h}");
        assert!(h.contains("\"live\":true"), "{h}");
        assert!(h.contains("\"snapshot_verified\":false"), "{h}");

        obs.set_ready(true);
        obs.set_collector_alive(true);
        let h = obs.health_json(&stats, 4, 0);
        assert!(h.contains("\"ready\":true"), "{h}");

        // Draining flips readiness off while liveness stays up.
        obs.set_draining(true);
        let h = obs.health_json(&stats, 4, 0);
        assert!(h.contains("\"ready\":false"), "{h}");
        assert!(h.contains("\"draining\":true"), "{h}");
        assert!(h.contains("\"live\":true"), "{h}");

        // A digest-verified snapshot surfaces its digest.
        let obs = Obs::new(ObsConfig {
            snapshot_digest: Some(0xabcd),
            ..Default::default()
        });
        let h = obs.health_json(&stats, 4, 0);
        assert!(h.contains("\"snapshot_verified\":true"), "{h}");
        assert!(
            h.contains("\"snapshot_digest\":\"000000000000abcd\""),
            "{h}"
        );
        assert!(crate::json::field_bool(&h, "ok") == Some(true));
    }

    #[test]
    fn snapshot_is_strict_validator_clean_with_hostile_tenant_name() {
        let obs = Obs::disabled();
        obs.set_ready(true);
        obs.set_collector_alive(true);
        obs.on_region(2);
        obs.on_cells(1_000_000, 1_500_000);
        obs.on_cells(2_000_000, 2_100_000);
        obs.on_degraded();
        obs.on_checkpoint_writes(3);
        obs.on_broken_pipe();
        let phases = Phases {
            submitted_us: 100,
            admitted_us: Some(150),
            gathered_us: Some(3_200),
            started_us: Some(3_300),
            first_hit_us: Some(9_000),
            finished_us: Some(9_100),
        };
        assert!(!obs.record_finish(&phases, 1));
        obs.on_first_hit(8_900);

        let text = obs.prometheus(&stats_with_tenant(), 4);
        let rep = validate_prometheus_strict(&text).expect("strict-clean scrape");
        assert!(rep.families >= 20, "families = {}", rep.families);
        // The quote in the tenant name must have been escaped.
        assert!(text.contains("tenant=\"ac\\\"me\""), "{text}");
        assert!(text.contains("sw_serve_resumes_total 1"), "{text}");
        assert!(text.contains("sw_serve_degraded_runs_total 1"), "{text}");
        assert!(
            text.contains("sw_serve_checkpoint_writes_total 3"),
            "{text}"
        );
        assert!(text.contains("sw_serve_broken_pipe_total 1"), "{text}");
        assert!(text.contains("sw_serve_total_us_count 1"), "{text}");
        assert!(text.contains("sw_serve_first_hit_us_count 1"), "{text}");
        // Two distinct GCUPS windows were credited.
        assert_eq!(text.matches("sw_serve_gcups_window{").count(), 2, "{text}");
    }

    #[test]
    fn shard_role_labels_every_series_and_stays_strict_clean() {
        let obs = Obs::new(ObsConfig {
            shard: Some(ShardRole {
                index: 1,
                count: 2,
                base: 12,
            }),
            ..Default::default()
        });
        obs.set_ready(true);
        obs.set_collector_alive(true);
        obs.on_region(1);
        obs.on_cells(1_000_000, 500);
        obs.on_connection_evicted();
        let phases = Phases {
            submitted_us: 0,
            admitted_us: Some(10),
            finished_us: Some(50),
            ..Default::default()
        };
        obs.record_finish(&phases, 0);

        let text = obs.prometheus(&stats_with_tenant(), 4);
        validate_prometheus_strict(&text).expect("shard-labelled scrape is strict-clean");
        // Every sample line (non-comment) must carry the shard label.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains("shard=\"1\""), "unlabelled sample: {line}");
        }
        assert!(
            text.contains("sw_serve_connection_evictions_total{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sw_serve_tenant_jobs_total{shard=\"1\",tenant="),
            "{text}"
        );
        assert!(
            text.contains("sw_serve_total_us_bucket{shard=\"1\",le="),
            "{text}"
        );

        let h = obs.health_json(&StatsSnapshot::default(), 4, 0);
        assert!(h.contains("\"shard\":1"), "{h}");
        assert!(h.contains("\"shard_count\":2"), "{h}");
        assert!(h.contains("\"shard_base\":12"), "{h}");
    }

    #[test]
    fn slow_query_threshold_counts_and_reports() {
        let obs = Obs::new(ObsConfig {
            slow_query_ms: Some(5),
            ..Default::default()
        });
        let fast = Phases {
            submitted_us: 0,
            finished_us: Some(4_000),
            ..Default::default()
        };
        let slow = Phases {
            submitted_us: 0,
            finished_us: Some(6_000),
            ..Default::default()
        };
        assert!(!obs.record_finish(&fast, 0));
        assert!(obs.record_finish(&slow, 0));
        let text = obs.prometheus(&StatsSnapshot::default(), 4);
        assert!(text.contains("sw_serve_slow_queries_total 1"), "{text}");
    }

    #[test]
    fn log_level_gates_lines_into_file() {
        let dir = std::env::temp_dir().join(format!("sw-obs-log-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ops.jsonl");
        let _ = std::fs::remove_file(&path);
        let obs = Obs::new(ObsConfig {
            log_level: LogLevel::Info,
            log_file: Some(path.clone()),
            ..Default::default()
        });
        obs.log(LogLevel::Error, "boom", ",\"job\":1");
        obs.log(
            LogLevel::Info,
            "job_finished",
            ",\"job\":1,\"state\":\"done\"",
        );
        obs.log(LogLevel::Debug, "region_detail", ""); // below threshold
        drop(obs);
        let text = std::fs::read_to_string(&path).expect("log file written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"event\":\"boom\""));
        assert!(lines[1].contains("\"event\":\"job_finished\""));
        for l in &lines {
            assert!(crate::json::field_u64(l, "t_us").is_some(), "{l}");
            assert!(crate::json::field_str(l, "level").is_some(), "{l}");
        }
        let _ = std::fs::remove_file(&path);

        // Off silences everything, even errors.
        let silent = Obs::disabled();
        silent.log(LogLevel::Error, "dropped", "");
        // (sink is stderr; nothing to assert beyond "does not panic")
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [
            LogLevel::Off,
            LogLevel::Error,
            LogLevel::Warn,
            LogLevel::Info,
            LogLevel::Debug,
        ] {
            assert_eq!(LogLevel::parse(l.name()), Some(l));
        }
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Error < LogLevel::Debug);
    }

    #[test]
    fn coord_scrape_is_strict_clean_with_failover_counters() {
        let text = coord_prometheus(4, 3, 2, 5, 1);
        validate_prometheus_strict(&text).expect("coordinator scrape is strict-clean");
        assert!(text.contains("sw_serve_shard_failovers_total 2"), "{text}");
        assert!(text.contains("sw_serve_net_retries_total 5"), "{text}");
        assert!(text.contains("sw_serve_shard_requeues_total 3"), "{text}");
        assert!(
            text.contains("sw_serve_coord_journal_skipped_total 1"),
            "{text}"
        );
        assert!(text.contains("sw_serve_coord_shards 4"), "{text}");
    }
}
