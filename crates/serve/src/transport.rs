//! Shard transport: one connection abstraction over unix sockets and
//! TCP, so the coordinator, the client and the daemon's accept loop all
//! speak the same code whether a worker is a local process or a remote
//! host.
//!
//! An [`Endpoint`] is the parsed form of what operators write on the
//! command line — `unix:///run/w0.sock` (or a bare path) and
//! `tcp://host:port` — and renders back to exactly that string, so
//! manifests and placement plans can mix both freely. [`Stream`] and
//! [`Listener`] are enum wrappers (no dyn dispatch on the request hot
//! path) that carry the few capabilities the daemon needs: deadline
//! connects, read timeouts, half-close, `try_clone`.
//!
//! [`ShardTransport`] is the coordinator-facing trait: connect with a
//! deadline, reconnect with jittered exponential backoff, and answer
//! periodic health heartbeats. [`NetTransport`] is the production
//! implementation; tests substitute fault-wrapped transports through
//! the same trait.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where a shard worker (or daemon) can be reached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A unix-domain socket path (`unix://<path>` or a bare path).
    Unix(PathBuf),
    /// A TCP `host:port` pair (`tcp://host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint string. `tcp://host:port` and `unix://<path>`
    /// are explicit; anything else is a bare unix socket path, so every
    /// pre-existing `--socket` value keeps working unchanged.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            let (host, port) = addr
                .rsplit_once(':')
                .ok_or_else(|| format!("tcp endpoint '{s}' needs host:port"))?;
            if host.is_empty() || port.parse::<u16>().is_err() {
                return Err(format!("tcp endpoint '{s}' needs host:port"));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix://") {
            if path.is_empty() {
                return Err(format!("unix endpoint '{s}' needs a path"));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if s.is_empty() {
            return Err("empty endpoint".into());
        }
        Ok(Endpoint::Unix(PathBuf::from(s)))
    }

    /// True for TCP endpoints (useful for capability gating — stale
    /// socket-file cleanup only makes sense for unix endpoints).
    pub fn is_tcp(&self) -> bool {
        matches!(self, Endpoint::Tcp(_))
    }

    /// One blocking connect attempt bounded by `timeout`. Unix connects
    /// are effectively instant (the kernel accepts or refuses); TCP
    /// resolves the address and uses `connect_timeout` so an
    /// unreachable host cannot hold the coordinator past its deadline.
    pub fn connect(&self, timeout: Duration) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::AddrNotAvailable,
                        format!("tcp://{addr}: no addresses"),
                    )
                })?;
                TcpStream::connect_timeout(&resolved, timeout.max(Duration::from_millis(1)))
                    .map(Stream::Tcp)
            }
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
        }
    }
}

/// A connected stream over either transport. Implements [`Read`] and
/// [`Write`] so `BufReader`/`BufWriter` code is transport-blind.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Set (or clear) the read timeout.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Switch blocking mode.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    /// Half-close the write side (signals end-of-request to the peer).
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Clone the underlying descriptor (reader/writer split).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
pub enum Listener {
    /// Unix-domain listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `endpoint`. For unix endpoints a stale socket file left by
    /// a crashed daemon is removed first — but only if nobody answers
    /// on it (a live daemon is an error, not a victim).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("{} already has a live daemon", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                UnixListener::bind(path).map(Listener::Unix)
            }
            Endpoint::Tcp(addr) => TcpListener::bind(addr).map(Listener::Tcp),
        }
    }

    /// Switch the accept loop to non-blocking polling.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// Reconnect policy: bounded retries with jittered exponential backoff.
/// The jitter stream is seeded, so a drill replays the same sleep
/// schedule on every run — determinism survives the retry path.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra connect attempts after the first failure (0 = fail fast).
    pub retries: u32,
    /// Base backoff before retry k sleeps `base * 2^k`, jittered.
    pub backoff_ms: u64,
    /// Jitter seed (same seed → same schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based): exponential in the
    /// attempt count, multiplied by a seeded jitter factor in
    /// `[0.5, 1.0)` so a fleet of clients hammering one restarting
    /// worker desynchronises instead of thundering.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(10))
            .max(1);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ (attempt as u64).wrapping_mul(0x9e37));
        let jitter = 0.5 + 0.5 * rng.gen_range(0..1000) as f64 / 1000.0;
        Duration::from_millis((base as f64 * jitter) as u64)
    }
}

/// Connect to `endpoint` under `policy`, sleeping the jittered backoff
/// between attempts. Returns the stream and how many *re*tries were
/// spent (0 = first attempt succeeded) so callers can feed the
/// `sw_serve_net_retries_total` counter.
pub fn connect_with_retry(
    endpoint: &Endpoint,
    connect_timeout: Duration,
    policy: &RetryPolicy,
) -> io::Result<(Stream, u32)> {
    let mut used = 0u32;
    loop {
        match endpoint.connect(connect_timeout) {
            Ok(s) => return Ok((s, used)),
            Err(e) if used >= policy.retries => return Err(e),
            Err(_) => {
                std::thread::sleep(policy.backoff(used));
                used += 1;
            }
        }
    }
}

/// The coordinator's view of a shard worker's wire: connect with a
/// deadline, reconnect with backoff, heartbeat. One implementation per
/// transport *behavior* (the production [`NetTransport`], fault
/// deciders in drills), not per socket family — family dispatch lives
/// in [`Endpoint`].
pub trait ShardTransport: Sync {
    /// One deadline-bounded connect attempt to `endpoint`.
    fn connect(&self, endpoint: &Endpoint, timeout: Duration) -> io::Result<Stream>;

    /// Connect with the reconnect policy; returns retries spent.
    fn connect_retry(
        &self,
        endpoint: &Endpoint,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> io::Result<(Stream, u32)> {
        let mut used = 0u32;
        loop {
            match self.connect(endpoint, timeout) {
                Ok(s) => return Ok((s, used)),
                Err(e) if used >= policy.retries => return Err(e),
                Err(_) => {
                    std::thread::sleep(policy.backoff(used));
                    used += 1;
                }
            }
        }
    }

    /// Wait until `endpoint` accepts connections, polling under
    /// `wait_ms`. The coordinator calls this after (re)spawning a
    /// worker — the spawn returns once the launch is underway, the
    /// transport waits for the socket.
    fn wait_ready(&self, endpoint: &Endpoint, wait_ms: u64) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_millis(wait_ms);
        loop {
            match self.connect(endpoint, Duration::from_millis(250)) {
                Ok(_) => return Ok(()),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!(
                        "worker {endpoint} not answering after {wait_ms} ms: {e}"
                    ))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// The production transport: real sockets, no interference.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetTransport;

impl ShardTransport for NetTransport {
    fn connect(&self, endpoint: &Endpoint, timeout: Duration) -> io::Result<Stream> {
        endpoint.connect(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_display_roundtrip() {
        let cases = [
            ("tcp://127.0.0.1:7777", true),
            ("tcp://localhost:9100", true),
            ("unix:///run/sw/w0.sock", false),
            ("/tmp/w0.sock", false),
            ("relative/w1.sock", false),
        ];
        for (s, tcp) in cases {
            let ep = Endpoint::parse(s).expect(s);
            assert_eq!(ep.is_tcp(), tcp, "{s}");
            let rendered = ep.to_string();
            // `unix://` prefix normalises to the bare path; all other
            // forms render back verbatim.
            let expect = s.strip_prefix("unix://").unwrap_or(s);
            assert_eq!(rendered, expect);
            assert_eq!(Endpoint::parse(&rendered).unwrap(), ep, "stable reparse");
        }
        assert!(Endpoint::parse("tcp://nohost").is_err());
        assert!(Endpoint::parse("tcp://:80").is_err());
        assert!(Endpoint::parse("tcp://h:notaport").is_err());
        assert!(Endpoint::parse("unix://").is_err());
        assert!(Endpoint::parse("").is_err());
    }

    #[test]
    fn tcp_listener_accepts_and_streams() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr().unwrap(),
            Listener::Unix(_) => unreachable!(),
        };
        let ep = Endpoint::Tcp(addr.to_string());
        let t = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 4];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(b"pong").unwrap();
        });
        let mut s = ep.connect(Duration::from_secs(5)).unwrap();
        s.write_all(b"ping").unwrap();
        s.shutdown_write().unwrap();
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"pong");
        t.join().unwrap();
    }

    #[test]
    fn backoff_is_jittered_exponential_and_seed_stable() {
        let p = RetryPolicy {
            retries: 5,
            backoff_ms: 40,
            seed: 9,
        };
        let q = RetryPolicy {
            seed: 10,
            ..p.clone()
        };
        for k in 0..5u32 {
            let base = 40u64 << k;
            let d = p.backoff(k).as_millis() as u64;
            assert!(d >= base / 2 && d < base, "attempt {k}: {d} vs base {base}");
            assert_eq!(p.backoff(k), p.backoff(k), "deterministic per seed");
        }
        assert_ne!(p.backoff(2), q.backoff(2), "different seeds differ");
    }

    #[test]
    fn connect_with_retry_survives_late_bind() {
        let dir = std::env::temp_dir().join(format!("sw-transport-retry-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("late.sock");
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        let binder = {
            let ep = ep.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(120));
                let l = Listener::bind(&ep).unwrap();
                let _ = l.accept();
            })
        };
        let policy = RetryPolicy {
            retries: 8,
            backoff_ms: 30,
            seed: 4,
        };
        let (_s, used) =
            connect_with_retry(&ep, Duration::from_millis(200), &policy).expect("late bind");
        assert!(used >= 1, "the first attempt raced a not-yet-bound socket");
        binder.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let ep = Endpoint::Unix(PathBuf::from("/nonexistent/never.sock"));
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 1,
            seed: 0,
        };
        let t0 = Instant::now();
        assert!(connect_with_retry(&ep, Duration::from_millis(50), &policy).is_err());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
