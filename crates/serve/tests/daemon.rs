//! End-to-end daemon scenario: one resident snapshot, concurrent
//! queries from mixed tenants, an over-quota rejection, a mid-flight
//! cancel that stays resumable, and artifact (trace + registry) checks.
//!
//! Every hit list the daemon streams is compared byte-for-byte (score +
//! header) against a solo static-split search of the same query over
//! the same prepared database — the acceptance gate for the service:
//! multiplexing through one engine must not perturb results.
//!
//! Sequencing is event-driven, not sleep-driven: the over-quota submit
//! fires only after both in-flight acks are read, and the cancel fires
//! only after `status` reports the job running. The only timing
//! assumption left is that a cancel issued milliseconds into a search
//! lands before its queue empties, which the delay drill guarantees.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};
use sw_core::{HeteroEngine, HeteroSearchConfig, PreparedDb, SearchConfig, SearchEngine};
use sw_sched::DrainSignal;
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::{Alphabet, EncodedSeq};
use sw_serve::{client, json, ServeConfig};

/// The daemon's shutdown signal for this test binary. Jobs are scoped
/// under it, so requesting it (the `shutdown` op does) drains them all.
/// Each test gets its own signal: a `DrainSignal` never resets once
/// requested, so sharing one would poison later tests.
static SHUTDOWN: DrainSignal = DrainSignal::new();
static BATCH_SHUTDOWN: DrainSignal = DrainSignal::new();
static SILENT_SHUTDOWN: DrainSignal = DrainSignal::new();
static EVICT_SHUTDOWN: DrainSignal = DrainSignal::new();
static DRAIN_HEALTH_SHUTDOWN: DrainSignal = DrainSignal::new();

fn fasta_of(seq: &EncodedSeq, a: &Alphabet) -> String {
    format!(
        ">{}\n{}\n",
        seq.header,
        String::from_utf8(a.decode(&seq.residues)).expect("ascii residues")
    )
}

fn solo_hits(
    engine: &HeteroEngine,
    prepared: &PreparedDb,
    q: &[u8],
    top: usize,
) -> Vec<(i64, String)> {
    let plan = engine.plan_split(prepared, q.len(), 0.55);
    let res = engine.search(
        q,
        prepared,
        &plan,
        &SearchConfig::best(1),
        &SearchConfig::best(1),
    );
    res.top(top)
        .iter()
        .map(|h| (h.score, prepared.sorted.db().header(h.id).to_string()))
        .collect()
}

fn served_hits(outcome: &client::SubmitOutcome) -> Vec<(i64, String)> {
    outcome
        .hits
        .iter()
        .map(|h| (h.score, h.header.clone()))
        .collect()
}

fn wait_for_socket(socket: &Path) {
    let t0 = Instant::now();
    while UnixStream::connect(socket).is_err() {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "daemon never bound {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Send a submit and return the response stream with the ack consumed,
/// so the caller can sequence on "job accepted" without waiting for the
/// result.
fn start_submit(
    socket: &Path,
    tenant: &str,
    fasta: &str,
    drill: Option<&str>,
) -> (BufReader<UnixStream>, u64) {
    let mut s = UnixStream::connect(socket).expect("connect");
    let req = client::submit_request(tenant, fasta, 10, drill);
    s.write_all(req.as_bytes()).unwrap();
    s.write_all(b"\n").unwrap();
    s.flush().unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut r = BufReader::new(s);
    let mut ack = String::new();
    r.read_line(&mut ack).unwrap();
    assert_eq!(json::field_bool(&ack, "ok"), Some(true), "rejected: {ack}");
    let id = json::field_u64(&ack, "job").expect("ack job id");
    (r, id)
}

/// Drain the rest of a submit stream into a parsed outcome.
fn finish_submit(r: BufReader<UnixStream>, job: u64) -> client::SubmitOutcome {
    let mut lines = vec![format!(
        "{{\"ok\":true,\"job\":{job},\"state\":\"queued\"}}"
    )];
    for l in r.lines() {
        lines.push(l.unwrap());
    }
    client::parse_submit_response(&lines).unwrap_or_else(|e| panic!("job {job}: {e}"))
}

/// Value of one exporter sample line: `sample v` where `sample` is the
/// bare metric name or `name{labels}`.
fn metric(scrape: &str, sample: &str) -> u64 {
    scrape
        .lines()
        .find_map(|l| l.strip_prefix(sample).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("sample '{sample}' missing from scrape:\n{scrape}"))
        .trim()
        .parse::<u64>()
        .unwrap_or_else(|e| panic!("sample '{sample}': {e}"))
}

fn wait_for_state(socket: &Path, job: u64, want: &str) {
    let t0 = Instant::now();
    loop {
        let lines = client::request(socket, &client::status_request(job)).expect("status");
        let state = json::field_str(&lines[0], "state").unwrap_or_default();
        if state == want {
            return;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "job {job} stuck in '{state}', want '{want}'"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn daemon_end_to_end() {
    let a = Alphabet::protein();
    let prepared = PreparedDb::prepare(generate_database(&DbSpec::tiny(13)), 4, &a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);

    let tmp = std::env::temp_dir().join(format!("sw-serve-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let mut config = ServeConfig::new(tmp.join("daemon.sock"));
    config.max_concurrent = 2;
    config.tenant_quota = 2;
    config.checkpoint_dir = Some(tmp.join("ckpt"));
    config.trace_dir = Some(tmp.join("trace"));
    config.registry_out = Some(tmp.join("registry.jsonl"));
    // As if the snapshot load digest-verified: health must surface it.
    config.snapshot_digest = Some(0x5eed);

    let q1 = generate_query(100, 21);
    let q2 = generate_query(120, 22);
    // Long enough that a cancel a few milliseconds into the run always
    // lands while the task queue is still deep.
    let q4 = generate_query(2000, 23);
    let (f1, f2, f4) = (fasta_of(&q1, &a), fasta_of(&q2, &a), fasta_of(&q4, &a));
    let solo1 = solo_hits(&engine, &prepared, &q1.residues, 10);
    let solo2 = solo_hits(&engine, &prepared, &q2.residues, 10);
    let solo4 = solo_hits(&engine, &prepared, &q4.residues, 10);

    let (final_stats, done_ids) = std::thread::scope(|s| {
        let server = {
            let (engine, prepared, a, base, config) = (&engine, &prepared, &a, &base, &config);
            s.spawn(move || sw_serve::serve(engine, prepared, a, base, config, &SHUTDOWN))
        };
        let socket = config.unix_socket().expect("unix listener");
        wait_for_socket(socket);

        // Two concurrent queries from one tenant, held in flight by the
        // delay drill; a third submit for that tenant bounces off the
        // quota while they run.
        let (r1, id1) = start_submit(socket, "acme", &f1, Some("delay@0:500"));
        let (r2, id2) = start_submit(socket, "acme", &f2, Some("delay@0:500"));
        let rejected =
            client::request(socket, &client::submit_request("acme", &f1, 10, None)).unwrap();
        assert_eq!(
            json::field_bool(&rejected[0], "ok"),
            Some(false),
            "{rejected:?}"
        );
        assert!(
            json::field_str(&rejected[0], "error")
                .unwrap()
                .contains("quota"),
            "{rejected:?}"
        );
        let o1 = finish_submit(r1, id1);
        let o2 = finish_submit(r2, id2);
        assert_eq!(o1.state, "done");
        assert_eq!(o2.state, "done");
        assert_eq!(served_hits(&o1), solo1, "q1 served == q1 solo");
        assert_eq!(served_hits(&o2), solo2, "q2 served == q2 solo");

        // Cancel mid-flight: wait until the job holds a run slot, then
        // drain it. It must come back cancelled with its checkpoint on
        // disk.
        let (r4, id4) = start_submit(socket, "beta", &f4, Some("delay@0:400"));
        wait_for_state(socket, id4, "running");
        let c = client::request(socket, &client::cancel_request(id4)).unwrap();
        assert_eq!(json::field_bool(&c[0], "ok"), Some(true), "{c:?}");
        let o4 = finish_submit(r4, id4);
        assert_eq!(o4.state, "cancelled");
        let ckpts = std::fs::read_dir(tmp.join("ckpt")).unwrap().count();
        assert_eq!(ckpts, 1, "cancelled job leaves one fingerprint checkpoint");

        // Resubmitting the same query resumes from that checkpoint and
        // still matches the solo run exactly.
        let (r5, id5) = start_submit(socket, "beta", &f4, None);
        let o5 = finish_submit(r5, id5);
        assert_eq!(o5.state, "done");
        assert!(o5.resumes >= 1, "resubmit must resume, not restart");
        assert_eq!(served_hits(&o5), solo4, "resumed served == solo");

        let st = client::request(socket, &client::stats_request()).unwrap();
        assert_eq!(json::field_u64(&st[0], "jobs"), Some(4), "{st:?}");
        assert_eq!(json::field_u64(&st[0], "done"), Some(3), "{st:?}");
        assert_eq!(json::field_u64(&st[0], "cancelled"), Some(1), "{st:?}");
        assert_eq!(json::field_u64(&st[0], "rejected"), Some(1), "{st:?}");
        // Cumulative terminal-state counters ride the same line.
        assert_eq!(json::field_u64(&st[0], "done_total"), Some(3), "{st:?}");
        assert_eq!(
            json::field_u64(&st[0], "cancelled_total"),
            Some(1),
            "{st:?}"
        );
        assert_eq!(json::field_u64(&st[0], "failed_total"), Some(0), "{st:?}");

        // Health mid-session: live, ready, digest-verified snapshot.
        let h = client::request(socket, &client::health_request()).unwrap();
        assert_eq!(json::field_bool(&h[0], "ok"), Some(true), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "ready"), Some(true), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "live"), Some(true), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "draining"), Some(false), "{h:?}");
        assert_eq!(
            json::field_bool(&h[0], "snapshot_verified"),
            Some(true),
            "{h:?}"
        );

        // Metrics: the scrape must be strict-validator clean and its
        // lifecycle counters must match this scripted session exactly
        // (4 submits, 3 done, 1 cancel, 1 quota rejection, 1 resume).
        let scrape = client::request(socket, &client::metrics_request())
            .unwrap()
            .join("\n");
        sw_trace::validate::validate_prometheus_strict(&scrape)
            .unwrap_or_else(|e| panic!("{e}\n{scrape}"));
        assert_eq!(metric(&scrape, "sw_serve_submitted_total"), 4);
        assert_eq!(metric(&scrape, "sw_serve_done_total"), 3);
        assert_eq!(metric(&scrape, "sw_serve_cancelled_total"), 1);
        assert_eq!(metric(&scrape, "sw_serve_failed_total"), 0);
        assert_eq!(metric(&scrape, "sw_serve_rejected_total"), 1);
        assert_eq!(metric(&scrape, "sw_serve_resumes_total"), o5.resumes);
        assert!(metric(&scrape, "sw_serve_checkpoint_writes_total") >= 1);
        // Every terminal job owns one total-latency observation; the
        // cancelled job was running so it has a run phase too; only the
        // 3 done jobs streamed a first hit; all 4 accepted jobs were
        // admitted and gathered into regions.
        assert_eq!(metric(&scrape, "sw_serve_total_us_count"), 4);
        assert_eq!(metric(&scrape, "sw_serve_run_us_count"), 4);
        assert_eq!(metric(&scrape, "sw_serve_first_hit_us_count"), 3);
        assert_eq!(metric(&scrape, "sw_serve_admit_us_count"), 4);
        assert_eq!(metric(&scrape, "sw_serve_gather_us_count"), 4);
        // Per-tenant outcome counters.
        for (sample, want) in [
            (
                "sw_serve_tenant_jobs_total{tenant=\"acme\",outcome=\"done\"}",
                2,
            ),
            (
                "sw_serve_tenant_jobs_total{tenant=\"acme\",outcome=\"rejected\"}",
                1,
            ),
            (
                "sw_serve_tenant_jobs_total{tenant=\"beta\",outcome=\"done\"}",
                1,
            ),
            (
                "sw_serve_tenant_jobs_total{tenant=\"beta\",outcome=\"cancelled\"}",
                1,
            ),
        ] {
            assert_eq!(metric(&scrape, sample), want, "{sample}");
        }

        let sh = client::request(socket, &client::shutdown_request()).unwrap();
        assert_eq!(json::field_bool(&sh[0], "ok"), Some(true), "{sh:?}");
        let stats = server.join().unwrap().expect("serve");
        (stats, [id1, id2, id5])
    });

    assert_eq!(final_stats.done, 3);
    assert_eq!(final_stats.cancelled, 1);
    assert_eq!(final_stats.rejected, 1);
    assert!(
        !config.unix_socket().expect("unix listener").exists(),
        "socket removed on shutdown"
    );

    // Registry dump: one JSONL record per job, states as observed.
    let registry = std::fs::read_to_string(tmp.join("registry.jsonl")).unwrap();
    assert_eq!(registry.lines().count(), 4, "{registry}");
    assert_eq!(
        registry
            .lines()
            .filter(|l| l.contains("\"state\":\"done\""))
            .count(),
        3,
        "{registry}"
    );

    // Per-job trace exports: each completed job has its own validating
    // JSONL file in which every event carries that job's query id —
    // concurrent runs stay separable after export.
    for id in done_ids {
        let path = tmp.join("trace").join(format!("job-{id}.jsonl"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = sw_trace::validate::validate_jsonl(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(report.queries, 1, "one query id per job export");
        let tag = format!("\"query\":{id},");
        assert!(
            text.lines()
                .skip(1)
                .all(|l| l.is_empty() || l.contains(&tag)),
            "job {id}: every event line must carry its query tag"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
}

/// Cross-query batching equivalence: four mixed-length queries that
/// coalesce into ONE shared dual-pool region must each stream a hit
/// list byte-identical to its solo run; a cancel mid-batch must spare
/// its batch-mates; and the cancelled query must resume from its
/// checkpoint on resubmit.
#[test]
fn batched_queries_match_solo_runs() {
    let a = Alphabet::protein();
    let prepared = PreparedDb::prepare(
        generate_database(&DbSpec {
            n_seqs: 60,
            mean_len: 100.0,
            max_len: 300,
            seed: 31,
        }),
        4,
        &a,
    );
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);

    let tmp = std::env::temp_dir().join(format!("sw-serve-batch-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let mut config = ServeConfig::new(tmp.join("daemon.sock"));
    config.max_concurrent = 4;
    config.tenant_quota = 8;
    // Wide gather window: the four submits below must land in the same
    // shared region so the `batch` field can be asserted.
    config.batch_window_ms = 250;
    config.checkpoint_dir = Some(tmp.join("ckpt"));

    let qs: Vec<EncodedSeq> = [(60, 41), (90, 42), (140, 43), (500, 44)]
        .iter()
        .map(|&(len, seed)| generate_query(len, seed))
        .collect();
    let solos: Vec<Vec<(i64, String)>> = qs
        .iter()
        .map(|q| solo_hits(&engine, &prepared, &q.residues, 10))
        .collect();
    // The cancel victim: long enough that a cancel a few ms into the
    // run always leaves undone tasks, held open by the delay drill.
    let qc = generate_query(1200, 45);
    let solo_c = solo_hits(&engine, &prepared, &qc.residues, 10);
    let qd = generate_query(80, 46);
    let solo_d = solo_hits(&engine, &prepared, &qd.residues, 10);

    std::thread::scope(|s| {
        let server = {
            let (engine, prepared, a, base, config) = (&engine, &prepared, &a, &base, &config);
            s.spawn(move || sw_serve::serve(engine, prepared, a, base, config, &BATCH_SHUTDOWN))
        };
        let socket = config.unix_socket().expect("unix listener");
        wait_for_socket(socket);

        // Phase 1: four concurrent mixed-length submits → one region.
        let streams: Vec<_> = qs
            .iter()
            .map(|q| start_submit(socket, "fleet", &fasta_of(q, &a), None))
            .collect();
        for ((r, id), solo) in streams.into_iter().zip(&solos) {
            let o = finish_submit(r, id);
            assert_eq!(o.state, "done", "job {id}");
            assert_eq!(o.batch, 4, "job {id} must share a 4-query region");
            assert_eq!(&served_hits(&o), solo, "batched == solo for job {id}");
        }

        // Phase 2: cancel one query mid-batch; its batch-mate finishes
        // with byte-identical hits.
        let (rc, idc) = start_submit(socket, "fleet", &fasta_of(&qc, &a), Some("delay@0:400"));
        let (rd, idd) = start_submit(socket, "fleet", &fasta_of(&qd, &a), None);
        wait_for_state(socket, idc, "running");
        let c = client::request(socket, &client::cancel_request(idc)).unwrap();
        assert_eq!(json::field_bool(&c[0], "ok"), Some(true), "{c:?}");
        let oc = finish_submit(rc, idc);
        let od = finish_submit(rd, idd);
        assert_eq!(oc.state, "cancelled", "victim drained out of the region");
        assert_eq!(od.state, "done", "batch-mate survives the cancel");
        assert_eq!(served_hits(&od), solo_d, "batch-mate hits untouched");
        assert_eq!(
            std::fs::read_dir(tmp.join("ckpt")).unwrap().count(),
            1,
            "cancelled query leaves exactly its own checkpoint"
        );

        // Phase 3: resubmit the victim — resumes from the checkpoint,
        // still byte-identical to solo.
        let (rr, idr) = start_submit(socket, "fleet", &fasta_of(&qc, &a), None);
        let or = finish_submit(rr, idr);
        assert_eq!(or.state, "done");
        assert!(or.resumes >= 1, "resubmit must resume, not restart");
        assert_eq!(served_hits(&or), solo_c, "resumed mid-batch == solo");
        assert_eq!(
            std::fs::read_dir(tmp.join("ckpt")).unwrap().count(),
            0,
            "completion removes the checkpoint"
        );

        let st = client::request(socket, &client::stats_request()).unwrap();
        assert_eq!(json::field_u64(&st[0], "jobs"), Some(7), "{st:?}");
        assert_eq!(json::field_u64(&st[0], "done"), Some(6), "{st:?}");
        assert_eq!(json::field_u64(&st[0], "cancelled"), Some(1), "{st:?}");

        client::request(socket, &client::shutdown_request()).unwrap();
        server.join().unwrap().expect("serve");
    });
    std::fs::remove_dir_all(&tmp).ok();
}

/// Readiness must flip off the moment a drain starts while liveness
/// stays up: an orchestrator pulls the daemon out of rotation without
/// killing it while the in-flight job finishes checkpointing.
#[test]
fn health_flips_during_drain() {
    let a = Alphabet::protein();
    let prepared = PreparedDb::prepare(
        generate_database(&DbSpec {
            n_seqs: 12,
            mean_len: 80.0,
            max_len: 200,
            seed: 61,
        }),
        4,
        &a,
    );
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-serve-drainhealth-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let config = ServeConfig::new(tmp.join("daemon.sock"));

    std::thread::scope(|s| {
        let server = {
            let (engine, prepared, a, base, config) = (&engine, &prepared, &a, &base, &config);
            s.spawn(move || {
                sw_serve::serve(engine, prepared, a, base, config, &DRAIN_HEALTH_SHUTDOWN)
            })
        };
        let socket = config.unix_socket().expect("unix listener");
        wait_for_socket(socket);

        // A delay-drill job holds the daemon in flight across the
        // whole probe sequence below.
        let q = generate_query(400, 62);
        let (r, id) = start_submit(socket, "ops", &fasta_of(&q, &a), Some("delay@0:800"));
        wait_for_state(socket, id, "running");
        let h = client::request(socket, &client::health_request()).unwrap();
        assert_eq!(json::field_bool(&h[0], "ready"), Some(true), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "draining"), Some(false), "{h:?}");

        // Shutdown: the daemon keeps answering probes while the job
        // drains, but reports itself not ready.
        let sh = client::request(socket, &client::shutdown_request()).unwrap();
        assert_eq!(json::field_bool(&sh[0], "ok"), Some(true), "{sh:?}");
        let h = client::request(socket, &client::health_request()).unwrap();
        assert_eq!(json::field_bool(&h[0], "ready"), Some(false), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "draining"), Some(true), "{h:?}");
        assert_eq!(json::field_bool(&h[0], "live"), Some(true), "{h:?}");

        let o = finish_submit(r, id);
        assert_eq!(o.state, "cancelled", "shutdown drains the in-flight job");
        server.join().unwrap().expect("serve");
    });
    assert!(
        !config.unix_socket().expect("unix listener").exists(),
        "socket removed after the drain"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

/// Regression for the shutdown wedge: a client that connects and never
/// sends a request used to park `handle_connection` in a blocking
/// `read_line` forever, so the scoped join in `serve` never returned.
/// With the read timeout + shutdown polling, `serve` must return while
/// the silent connection is still open.
#[test]
fn stalled_half_line_client_is_evicted() {
    // A client that sends half a request line and stalls must not pin
    // a connection thread and fd until daemon shutdown: the request
    // deadline evicts it (closing the socket), the eviction lands in
    // the SLO counters, and the daemon stays fully serviceable.
    let a = Alphabet::protein();
    let prepared = PreparedDb::prepare(
        generate_database(&DbSpec {
            n_seqs: 8,
            mean_len: 60.0,
            max_len: 120,
            seed: 53,
        }),
        4,
        &a,
    );
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-serve-evict-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let mut config = ServeConfig::new(tmp.join("daemon.sock"));
    config.request_timeout_ms = 300;

    std::thread::scope(|s| {
        let server = {
            let (engine, prepared, a, base, config) = (&engine, &prepared, &a, &base, &config);
            s.spawn(move || sw_serve::serve(engine, prepared, a, base, config, &EVICT_SHUTDOWN))
        };
        let socket = config.unix_socket().expect("unix listener");
        wait_for_socket(socket);
        // Half a request line, never finished.
        let mut stalled = UnixStream::connect(socket).expect("connect");
        stalled.write_all(b"{\"op\":\"hea").unwrap();
        stalled.flush().unwrap();
        // The daemon must hang up on us within the deadline (plus
        // generous slack), NOT hold the fd until shutdown.
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        use std::io::Read as _;
        let n = stalled
            .read(&mut buf)
            .expect("daemon must close the stalled connection before the client read times out");
        assert_eq!(n, 0, "eviction is a hangup, not a reply");

        // The eviction is counted, and the daemon is still healthy and
        // serving: a real query on a fresh connection completes.
        let scrape = client::request(socket, &client::metrics_request())
            .unwrap()
            .join("\n");
        assert_eq!(metric(&scrape, "sw_serve_connection_evictions_total"), 1);
        let q = generate_query(40, 7);
        let (r, job) = start_submit(socket, "late", &fasta_of(&q, &a), None);
        let outcome = finish_submit(r, job);
        assert_eq!(outcome.state, "done");

        let sh = client::request(socket, &client::shutdown_request()).unwrap();
        assert_eq!(json::field_bool(&sh[0], "ok"), Some(true), "{sh:?}");
        server.join().unwrap().expect("serve");
    });
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn silent_connection_does_not_block_shutdown() {
    let a = Alphabet::protein();
    let prepared = PreparedDb::prepare(
        generate_database(&DbSpec {
            n_seqs: 8,
            mean_len: 60.0,
            max_len: 120,
            seed: 51,
        }),
        4,
        &a,
    );
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-serve-silent-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let config = ServeConfig::new(tmp.join("daemon.sock"));

    std::thread::scope(|s| {
        let server = {
            let (engine, prepared, a, base, config) = (&engine, &prepared, &a, &base, &config);
            s.spawn(move || sw_serve::serve(engine, prepared, a, base, config, &SILENT_SHUTDOWN))
        };
        let socket = config.unix_socket().expect("unix listener");
        wait_for_socket(socket);
        // Open a connection and say nothing; keep it open across the
        // whole shutdown sequence.
        let silent = UnixStream::connect(socket).expect("silent connect");
        // Give the accept loop a beat to hand it to a connection thread
        // (the wedge needs the thread parked in the request read).
        std::thread::sleep(Duration::from_millis(100));
        let sh = client::request(socket, &client::shutdown_request()).unwrap();
        assert_eq!(json::field_bool(&sh[0], "ok"), Some(true), "{sh:?}");
        let t0 = Instant::now();
        server.join().unwrap().expect("serve");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "serve() must return promptly despite the open silent connection"
        );
        drop(silent);
    });
    std::fs::remove_dir_all(&tmp).ok();
}
