//! Sharded-search acceptance: the coordinator's merged top-K must be
//! byte-identical to the unsharded engine's, at 1, 2 and 4 shards, with
//! equal-score ties deliberately straddling every shard boundary — and
//! a dead shard worker must be requeued, respawned and resumed from its
//! SWCKPT1 checkpoint without perturbing a single output byte.
//!
//! Workers here are in-process `serve` daemons (one scoped thread per
//! shard, each with its own leaked `'static` drain signal); the CI
//! shard-smoke job runs the same drill against real processes with a
//! real SIGKILL.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use sw_core::{HeteroEngine, HeteroSearchConfig, PreparedDb, SearchConfig, SearchEngine};
use sw_sched::{DrainSignal, NetFaultInjector, NetFaultPlan};
use sw_seq::gen::generate_query;
use sw_seq::{Alphabet, EncodedSeq};
use sw_serve::journal::fnv1a;
use sw_serve::{
    client, coord, json, CommittedShard, CoordConfig, CoordDrill, CoordJournal, Endpoint,
    NetTransport, ServeConfig, ShardRole, ShardSpec,
};

const LANES: usize = 4;
const TOP: usize = 12;

/// Each in-process daemon needs its own `'static` signal (a
/// `DrainSignal` never resets), and respawns need fresh ones at
/// runtime — so they are minted, not declared.
fn leak_signal() -> &'static DrainSignal {
    Box::leak(Box::new(DrainSignal::new()))
}

/// 24 equal-length sequences with 8 byte-identical duplicates parked at
/// positions 10..18: every boundary a 2- or 4-way split of 24 draws
/// (12; 6, 12, 18) lands inside or adjacent to the duplicate run, so
/// the merged top-K only matches the unsharded run if the coordinator
/// applies the exact (score desc, global id asc) tie-break across
/// shards. Equal lengths make the length-sort the identity permutation:
/// global id == input position, on workers and reference alike.
fn tie_heavy_db() -> Vec<EncodedSeq> {
    let mut seqs: Vec<EncodedSeq> = (0..24)
        .map(|i| {
            let mut s = generate_query(60, 1000 + i as u64);
            s.header = format!("seq-{i:02}").into();
            s
        })
        .collect();
    let dup = generate_query(60, 777).residues;
    for (i, s) in seqs.iter_mut().enumerate().take(18).skip(10) {
        s.residues = dup.clone();
        s.header = format!("dup-{i:02}").into();
    }
    seqs
}

fn fasta_of(seq: &EncodedSeq, a: &Alphabet) -> String {
    format!(
        ">{}\n{}\n",
        seq.header,
        String::from_utf8(a.decode(&seq.residues)).expect("ascii residues")
    )
}

/// Contiguous shard ranges, residue-balanced enough for a test: same
/// plan the real `shard-prepare` computes, via the library.
fn ranges(seqs: &[EncodedSeq], n: usize) -> Vec<(usize, usize)> {
    let db = sw_swdb::SequenceDatabase::from_sequences(seqs.to_vec());
    sw_swdb::shard::plan_shards(&db, n)
}

fn shard_digest(seqs: &[EncodedSeq]) -> u64 {
    sw_swdb::snapshot::content_digest(&sw_swdb::SequenceDatabase::from_sequences(seqs.to_vec()))
}

/// The exact wire rendering both the daemon and the coordinator's
/// `--json` mode emit — the unit of byte-identity in this file.
fn wire(rank: usize, score: i64, id: u64, header: &str) -> String {
    format!(
        "{{\"rank\":{rank},\"score\":{score},\"id\":{id},\"header\":\"{}\"}}",
        json::escape(header)
    )
}

fn wire_hits(hits: &[client::HitLine]) -> Vec<String> {
    hits.iter()
        .map(|h| wire(h.rank as usize, h.score, h.id, &h.header))
        .collect()
}

/// Unsharded reference: one engine, whole database, `SearchResults`
/// tie-break. What every sharded configuration must reproduce.
fn reference_hits(seqs: &[EncodedSeq], query: &EncodedSeq, a: &Alphabet) -> Vec<String> {
    let prepared = PreparedDb::prepare(seqs.to_vec(), LANES, a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let plan = engine.plan_split(&prepared, query.residues.len(), 0.55);
    let res = engine.search(
        &query.residues,
        &prepared,
        &plan,
        &SearchConfig::best(1),
        &SearchConfig::best(1),
    );
    res.top(TOP)
        .iter()
        .enumerate()
        .map(|(i, h)| {
            wire(
                i + 1,
                h.score,
                h.id.0 as u64,
                prepared.sorted.db().header(h.id),
            )
        })
        .collect()
}

fn wait_for_socket(socket: &Path) {
    let t0 = Instant::now();
    while UnixStream::connect(socket).is_err() {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "worker never bound {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One shard worker's resident state, owned outside the thread scope so
/// respawn closures can re-serve the same shard.
struct WorkerSeed {
    prepared: PreparedDb,
    config: ServeConfig,
}

fn worker_seed(
    seqs: &[EncodedSeq],
    range: (usize, usize),
    index: u64,
    count: u64,
    a: &Alphabet,
    socket: PathBuf,
    ckpt: &Path,
) -> WorkerSeed {
    let shard_seqs = seqs[range.0..range.1].to_vec();
    let mut config = ServeConfig::new(socket);
    config.checkpoint_dir = Some(ckpt.to_path_buf());
    config.snapshot_digest = Some(shard_digest(&shard_seqs));
    config.shard = Some(ShardRole {
        index,
        count,
        base: range.0 as u64,
    });
    WorkerSeed {
        prepared: PreparedDb::prepare(shard_seqs, LANES, a),
        config,
    }
}

fn serve_seed(
    seed: &WorkerSeed,
    engine: &HeteroEngine,
    a: &Alphabet,
    base: &HeteroSearchConfig,
    signal: &'static DrainSignal,
) {
    // A respawn reuses the socket path of the corpse it replaces.
    if let Some(path) = seed.config.unix_socket() {
        let _ = std::fs::remove_file(path);
    }
    sw_serve::serve(engine, &seed.prepared, a, base, &seed.config, signal).expect("worker serve");
}

/// The worker's unix socket path (every in-process worker here is one).
fn seed_socket(seed: &WorkerSeed) -> PathBuf {
    seed.config
        .unix_socket()
        .expect("unix worker")
        .to_path_buf()
}

#[test]
fn sharded_merge_is_byte_identical_at_1_2_4_shards() {
    let a = Alphabet::protein();
    let seqs = tie_heavy_db();
    let query = generate_query(90, 4242);
    let fasta = fasta_of(&query, &a);
    let expect = reference_hits(&seqs, &query, &a);
    assert!(
        expect.len() >= 8,
        "reference must be deep enough to cross boundaries: {expect:?}"
    );
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-shard-matrix-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(tmp.join("ckpt")).unwrap();

    for n in [1usize, 2, 4] {
        let plan = ranges(&seqs, n);
        assert_eq!(plan.len(), n);
        let seeds: Vec<WorkerSeed> = plan
            .iter()
            .enumerate()
            .map(|(i, r)| {
                worker_seed(
                    &seqs,
                    *r,
                    i as u64,
                    n as u64,
                    &a,
                    tmp.join(format!("n{n}-shard-{i}.sock")),
                    &tmp.join("ckpt"),
                )
            })
            .collect();
        let specs: Vec<ShardSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSpec::unix(i as u64, seed_socket(s), s.config.snapshot_digest))
            .collect();
        let outcome = std::thread::scope(|s| {
            for seed in &seeds {
                let (engine, a, base) = (&engine, &a, &base);
                let sig = leak_signal();
                s.spawn(move || serve_seed(seed, engine, a, base, sig));
            }
            for seed in &seeds {
                wait_for_socket(&seed_socket(seed));
            }
            let cfg = CoordConfig::new(TOP);
            let no_respawn = |spec: &ShardSpec, _attempt: u32| -> Result<(), String> {
                Err(format!("unexpected respawn of shard {}", spec.index))
            };
            let outcome = coord::search_sharded(&specs, &fasta, &cfg, &no_respawn)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            for spec in &specs {
                coord::shutdown_worker(spec.endpoint_for(0)).expect("shutdown");
            }
            outcome
        });
        assert_eq!(
            wire_hits(&outcome.hits),
            expect,
            "n={n}: merged top-K must be byte-identical to the unsharded run"
        );
        assert_eq!(outcome.requeues, 0, "n={n}: healthy workers never requeue");
        assert_eq!(outcome.failovers, 0, "n={n}: no replica failovers");
        assert_eq!(outcome.journal_skipped, 0, "n={n}: no journal, no skips");
        assert!(
            outcome.reports.iter().map(|r| r.hits).sum::<usize>() >= expect.len(),
            "n={n}: shards must contribute at least the merged depth"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn dead_worker_is_requeued_respawned_and_resumes_from_checkpoint() {
    let a = Alphabet::protein();
    let seqs = tie_heavy_db();
    let query = generate_query(300, 9999);
    let fasta = fasta_of(&query, &a);
    let expect = reference_hits(&seqs, &query, &a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-shard-drill-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(tmp.join("ckpt")).unwrap();

    let plan = ranges(&seqs, 2);
    let seeds: Vec<WorkerSeed> = plan
        .iter()
        .enumerate()
        .map(|(i, r)| {
            worker_seed(
                &seqs,
                *r,
                i as u64,
                2,
                &a,
                tmp.join(format!("shard-{i}.sock")),
                &tmp.join("ckpt"),
            )
        })
        .collect();
    let specs: Vec<ShardSpec> = seeds
        .iter()
        .enumerate()
        .map(|(i, s)| ShardSpec::unix(i as u64, seed_socket(s), s.config.snapshot_digest))
        .collect();
    let sockets: Vec<PathBuf> = seeds.iter().map(seed_socket).collect();

    let outcome = std::thread::scope(|s| {
        // Phase A: worker 0 lives briefly — long enough to accept the
        // query, get cancelled mid-delay-drill, and checkpoint — then
        // shuts down. This is the in-process stand-in for "SIGKILLed
        // after its interval checkpoint": a dead socket with a valid
        // SWCKPT1 file behind it.
        {
            let (engine, a, base) = (&engine, &a, &base);
            let seed0 = &seeds[0];
            let sig = leak_signal();
            let t = s.spawn(move || serve_seed(seed0, engine, a, base, sig));
            wait_for_socket(&sockets[0]);
            let mut conn = UnixStream::connect(&sockets[0]).unwrap();
            let req = client::submit_request("coord", &fasta, TOP, Some("delay@0:400"));
            conn.write_all(req.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut r = BufReader::new(conn);
            let mut ack = String::new();
            r.read_line(&mut ack).unwrap();
            let job = json::field_u64(&ack, "job").expect("ack");
            // Cancel once it holds a run slot, so the checkpoint is of
            // a genuinely in-flight search.
            let t0 = Instant::now();
            loop {
                let st = client::request(&sockets[0], &client::status_request(job)).unwrap();
                if json::field_str(&st[0], "state").as_deref() == Some("running") {
                    break;
                }
                assert!(t0.elapsed() < Duration::from_secs(10), "job never ran");
                std::thread::sleep(Duration::from_millis(5));
            }
            client::request(&sockets[0], &client::cancel_request(job)).unwrap();
            for _ in r.lines() {} // drain the cancelled reply
            coord::shutdown_worker(specs[0].endpoint_for(0)).unwrap();
            t.join().unwrap();
            let ckpts = std::fs::read_dir(tmp.join("ckpt")).unwrap().count();
            assert_eq!(ckpts, 1, "dead worker must leave its checkpoint behind");
        }

        // Phase B: worker 1 is healthy; worker 0's socket is a corpse.
        // The coordinator's first attempt on shard 0 must fail to
        // connect, requeue the shard, respawn it, and the respawned
        // worker must resume from phase A's checkpoint.
        {
            let (engine, a, base) = (&engine, &a, &base);
            let sig1 = leak_signal();
            let seed1 = &seeds[1];
            s.spawn(move || serve_seed(seed1, engine, a, base, sig1));
            wait_for_socket(&sockets[1]);
        }
        let mut cfg = CoordConfig::new(TOP);
        cfg.connect_wait_ms = 300; // fail fast on the corpse
        let respawn = |spec: &ShardSpec, _attempt: u32| -> Result<(), String> {
            assert_eq!(spec.index, 0, "only the dead shard may respawn");
            let (engine, a, base) = (&engine, &a, &base);
            let seed0 = &seeds[0];
            let sig = leak_signal();
            s.spawn(move || serve_seed(seed0, engine, a, base, sig));
            Ok(())
        };
        let outcome = coord::search_sharded(&specs, &fasta, &cfg, &respawn).expect("recovered");
        for spec in &specs {
            coord::shutdown_worker(spec.endpoint_for(0)).expect("shutdown");
        }
        outcome
    });

    assert!(
        outcome.requeues >= 1,
        "dead shard must requeue: {outcome:?}"
    );
    assert!(
        outcome.reports[0].attempts >= 2,
        "shard 0 needs a second attempt: {:?}",
        outcome.reports
    );
    assert!(
        outcome.reports[0].resumes >= 1,
        "respawned shard 0 must resume from the checkpoint, not restart: {:?}",
        outcome.reports
    );
    assert_eq!(outcome.reports[1].attempts, 1, "shard 1 was healthy");
    assert_eq!(
        wire_hits(&outcome.hits),
        expect,
        "post-recovery merge must still be byte-identical to the unsharded run"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn replica_failover_preserves_merged_bytes() {
    // Shard 0's primary endpoint is a corpse that never comes back; its
    // replica (same SWSHRD1 shard, different socket) is alive. The
    // first attempt fails to connect, the requeue walks the endpoint
    // ring onto the replica, and the merge must not move a byte.
    let a = Alphabet::protein();
    let seqs = tie_heavy_db();
    let query = generate_query(90, 1717);
    let fasta = fasta_of(&query, &a);
    let expect = reference_hits(&seqs, &query, &a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-shard-replica-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(tmp.join("ckpt")).unwrap();

    let plan = ranges(&seqs, 2);
    let replica0 = worker_seed(
        &seqs,
        plan[0],
        0,
        2,
        &a,
        tmp.join("shard-0-r1.sock"),
        &tmp.join("ckpt"),
    );
    let worker1 = worker_seed(
        &seqs,
        plan[1],
        1,
        2,
        &a,
        tmp.join("shard-1-r0.sock"),
        &tmp.join("ckpt"),
    );
    let specs = vec![
        ShardSpec {
            index: 0,
            endpoints: vec![
                Endpoint::Unix(tmp.join("shard-0-r0.sock")), // never bound
                Endpoint::Unix(seed_socket(&replica0)),
            ],
            expect_digest: replica0.config.snapshot_digest,
        },
        ShardSpec::unix(1, seed_socket(&worker1), worker1.config.snapshot_digest),
    ];

    let outcome = std::thread::scope(|s| {
        for seed in [&replica0, &worker1] {
            let (engine, a, base) = (&engine, &a, &base);
            let sig = leak_signal();
            s.spawn(move || serve_seed(seed, engine, a, base, sig));
            wait_for_socket(&seed_socket(seed));
        }
        let mut cfg = CoordConfig::new(TOP);
        cfg.connect_wait_ms = 200; // fail fast on the dead primary
                                   // Failover needs no launcher: the replica is already up.
        let respawn = |spec: &ShardSpec, attempt: u32| -> Result<(), String> {
            assert_eq!((spec.index, attempt), (0, 1), "only shard 0 fails over");
            Ok(())
        };
        let outcome = coord::search_sharded(&specs, &fasta, &cfg, &respawn).expect("failover");
        for seed in [&replica0, &worker1] {
            coord::shutdown_worker(&Endpoint::Unix(seed_socket(seed))).expect("shutdown");
        }
        outcome
    });

    assert!(outcome.failovers >= 1, "replica failover: {outcome:?}");
    assert_eq!(outcome.reports[0].attempts, 2, "{:?}", outcome.reports);
    assert_eq!(outcome.reports[1].attempts, 1, "{:?}", outcome.reports);
    assert_eq!(
        wire_hits(&outcome.hits),
        expect,
        "replica failover must not change merged bytes"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn resumed_coordinator_skips_committed_shards_and_merges_identically() {
    // A coordinator "crashes" after committing shard 0 to its SWCRDJ1
    // journal. The restarted coordinator must not touch shard 0's
    // (now dead) worker at all: it replays the committed hits from the
    // journal, runs only shard 1, and merges to the same bytes.
    let a = Alphabet::protein();
    let seqs = tie_heavy_db();
    let query = generate_query(90, 3131);
    let fasta = fasta_of(&query, &a);
    let expect = reference_hits(&seqs, &query, &a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-shard-journal-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(tmp.join("ckpt")).unwrap();

    let plan = ranges(&seqs, 2);
    let seeds: Vec<WorkerSeed> = plan
        .iter()
        .enumerate()
        .map(|(i, r)| {
            worker_seed(
                &seqs,
                *r,
                i as u64,
                2,
                &a,
                tmp.join(format!("shard-{i}.sock")),
                &tmp.join("ckpt"),
            )
        })
        .collect();

    // Phase A: run shard 0's worker alone, submit directly, and record
    // its hits the way the pre-crash coordinator would have.
    let shard0_hits = std::thread::scope(|s| {
        let (engine_r, a_r, base_r) = (&engine, &a, &base);
        let seed0 = &seeds[0];
        let sig = leak_signal();
        s.spawn(move || serve_seed(seed0, engine_r, a_r, base_r, sig));
        let socket = seed_socket(&seeds[0]);
        wait_for_socket(&socket);
        let lines = client::request(&socket, &client::submit_request("coord", &fasta, TOP, None))
            .expect("submit");
        let outcome = client::parse_submit_response(&lines).expect("parse");
        coord::shutdown_worker(&Endpoint::Unix(socket)).expect("shutdown");
        outcome.hits
    });
    assert!(!shard0_hits.is_empty(), "shard 0 contributes hits");

    // The journal a SIGKILLed coordinator would have left behind.
    let journal_path = tmp.join("coord.journal");
    let mut journal = CoordJournal::new(fnv1a(fasta.as_bytes()), 0, TOP as u64, 2);
    journal.shards[0].attempts = 1;
    journal.shards[0].committed = Some(CommittedShard {
        resumes: 0,
        hits: shard0_hits,
    });
    journal.save(&journal_path).expect("journal save");

    // Phase B: only shard 1's worker exists. Shard 0's socket is a
    // corpse — any attempt to contact it would fail the search.
    let outcome = std::thread::scope(|s| {
        let (engine_r, a_r, base_r) = (&engine, &a, &base);
        let seed1 = &seeds[1];
        let sig = leak_signal();
        s.spawn(move || serve_seed(seed1, engine_r, a_r, base_r, sig));
        wait_for_socket(&seed_socket(&seeds[1]));
        let specs: Vec<ShardSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, sd)| ShardSpec::unix(i as u64, seed_socket(sd), sd.config.snapshot_digest))
            .collect();
        let mut cfg = CoordConfig::new(TOP);
        cfg.connect_wait_ms = 200;
        let drill = CoordDrill {
            faults: None,
            journal: Some(journal_path.clone()),
            resume: true,
        };
        let no_respawn = |spec: &ShardSpec, _attempt: u32| -> Result<(), String> {
            Err(format!("unexpected respawn of shard {}", spec.index))
        };
        let outcome =
            coord::search_sharded_durable(&specs, &fasta, &cfg, &no_respawn, &NetTransport, &drill)
                .expect("resumed search");
        coord::shutdown_worker(specs[1].endpoint_for(0)).expect("shutdown");
        outcome
    });

    assert_eq!(outcome.journal_skipped, 1, "{outcome:?}");
    assert_eq!(
        outcome.reports[0].attempts, 1,
        "shard 0's report comes from the journal: {:?}",
        outcome.reports
    );
    assert_eq!(
        wire_hits(&outcome.hits),
        expect,
        "resume-coord merge must be byte-identical to an uninterrupted run"
    );
    assert!(
        !journal_path.exists(),
        "journal is removed after a clean finish"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn seeded_net_faults_with_replicas_never_change_merged_bytes() {
    // Property-style drill: for several seeds, a seeded network fault
    // plan (refuse / mid-stream drop / black-hole / slow-drip) hits the
    // first attempts of a 2-shard search where every shard has a live
    // replica. Whatever fires, failover + retry must converge on the
    // byte-identical merged top-K.
    let a = Alphabet::protein();
    let seqs = tie_heavy_db();
    let query = generate_query(90, 5151);
    let fasta = fasta_of(&query, &a);
    let expect = reference_hits(&seqs, &query, &a);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let base = HeteroSearchConfig::best(1, 1);
    let tmp = std::env::temp_dir().join(format!("sw-shard-netfault-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(tmp.join("ckpt")).unwrap();

    let plan = ranges(&seqs, 2);
    // Two live workers per shard: primary r0 and replica r1.
    let seeds: Vec<WorkerSeed> = (0..2u64)
        .flat_map(|shard| (0..2u64).map(move |r| (shard, r)).collect::<Vec<_>>())
        .map(|(shard, r)| {
            worker_seed(
                &seqs,
                plan[shard as usize],
                shard,
                2,
                &a,
                tmp.join(format!("shard-{shard}-r{r}.sock")),
                &tmp.join("ckpt"),
            )
        })
        .collect();
    let specs: Vec<ShardSpec> = (0..2usize)
        .map(|shard| ShardSpec {
            index: shard as u64,
            endpoints: vec![
                Endpoint::Unix(seed_socket(&seeds[shard * 2])),
                Endpoint::Unix(seed_socket(&seeds[shard * 2 + 1])),
            ],
            expect_digest: seeds[shard * 2].config.snapshot_digest,
        })
        .collect();

    // Collect inside the scope, assert outside: a panic while the
    // daemon threads are alive would skip their shutdown and deadlock
    // the scope's implicit join.
    let runs = std::thread::scope(|s| {
        for seed in &seeds {
            let (engine, a, base) = (&engine, &a, &base);
            let sig = leak_signal();
            s.spawn(move || serve_seed(seed, engine, a, base, sig));
            wait_for_socket(&seed_socket(seed));
        }
        let mut runs = Vec::new();
        for seed in 1..=4u64 {
            let injector = NetFaultInjector::new(NetFaultPlan::seeded(seed, 2, 2));
            let mut cfg = CoordConfig::new(TOP);
            cfg.connect_wait_ms = 300;
            cfg.heartbeat_ms = 40; // fast black-hole detection
            cfg.max_attempts = 4;
            cfg.failure_budget = 8;
            cfg.seed = seed;
            let drill = CoordDrill {
                faults: Some(&injector),
                journal: None,
                resume: false,
            };
            // Workers never actually die here (faults are injected on
            // the coordinator's wire), so failover needs no launcher.
            let respawn = |_: &ShardSpec, _: u32| -> Result<(), String> { Ok(()) };
            let outcome = coord::search_sharded_durable(
                &specs,
                &fasta,
                &cfg,
                &respawn,
                &NetTransport,
                &drill,
            );
            runs.push((seed, outcome, injector.fired_specs()));
        }
        for seed in &seeds {
            coord::shutdown_worker(&Endpoint::Unix(seed_socket(seed))).expect("shutdown");
        }
        runs
    });
    for (seed, outcome, fired) in runs {
        let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            wire_hits(&outcome.hits),
            expect,
            "seed {seed}: injected net faults must never change merged bytes"
        );
        assert!(
            !fired.is_empty(),
            "seed {seed}: the plan must actually fire"
        );
        let lethal = fired.iter().filter(|f| f.kind.forces_retry()).count();
        assert_eq!(
            outcome.requeues as usize, lethal,
            "seed {seed}: every retry-forcing fault costs exactly one \
             requeue (fired: {fired:?})"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
}
