//! Criterion benchmark of the end-to-end pipeline (Algorithm 1) on a
//! small synthetic database — preparation, search under each major
//! variant, and the heterogeneous split path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use sw_core::{HeteroEngine, PreparedDb, SearchConfig, SearchEngine};
use sw_kernels::KernelVariant;
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::Alphabet;

fn bench_pipeline(c: &mut Criterion) {
    let a = Alphabet::protein();
    let spec = DbSpec { n_seqs: 400, mean_len: 200.0, max_len: 1000, seed: 5 };
    let seqs = generate_database(&spec);
    let query = generate_query(300, 1).residues;
    let db = PreparedDb::prepare(seqs.clone(), 16, &a);
    let engine = SearchEngine::paper_default();
    let cells = db.total_cells(query.len());

    let mut group = c.benchmark_group("pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .throughput(Throughput::Elements(cells));

    group.bench_function("prepare", |b| {
        b.iter(|| PreparedDb::prepare(seqs.clone(), 16, &a))
    });

    for variant in [
        "no-vec-sp",
        "simd-sp",
        "intrinsic-qp",
        "intrinsic-sp",
    ] {
        let v = sw_cli_like_variant(variant);
        let cfg = SearchConfig::best(1).with_variant(v);
        group.bench_with_input(BenchmarkId::new("search", variant), &cfg, |b, cfg| {
            b.iter(|| engine.search(&query, &db, cfg))
        });
    }

    group.bench_function("hetero-55pct", |b| {
        let hetero = HeteroEngine::new(engine.clone());
        let plan = hetero.plan_split(&db, query.len(), 0.55);
        let cfg = SearchConfig::best(1);
        b.iter(|| hetero.search(&query, &db, &plan, &cfg, &cfg))
    });

    group.finish();
}

/// Minimal local variant parser (avoids a dependency on sw-cli).
fn sw_cli_like_variant(label: &str) -> KernelVariant {
    use sw_kernels::{ProfileMode, Vectorization};
    let (vec, profile) = match label {
        "no-vec-sp" => (Vectorization::NoVec, ProfileMode::Sequence),
        "simd-sp" => (Vectorization::Guided, ProfileMode::Sequence),
        "intrinsic-qp" => (Vectorization::Intrinsic, ProfileMode::Query),
        "intrinsic-sp" => (Vectorization::Intrinsic, ProfileMode::Sequence),
        _ => unreachable!("labels are fixed above"),
    };
    KernelVariant { vec, profile, blocking: true }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
