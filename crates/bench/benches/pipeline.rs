//! End-to-end pipeline benchmark (Algorithm 1) on a small synthetic
//! database — preparation, search under each major variant, and both
//! heterogeneous paths (static split and dynamic dual-pool). Std-only
//! harness, see `sw_bench::micro`.

use sw_bench::micro;
use sw_core::{HeteroEngine, HeteroSearchConfig, PreparedDb, SearchConfig, SearchEngine};
use sw_kernels::KernelVariant;
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::Alphabet;

fn main() {
    let a = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: 400,
        mean_len: 200.0,
        max_len: 1000,
        seed: 5,
    };
    let seqs = generate_database(&spec);
    let query = generate_query(300, 1).residues;
    let db = PreparedDb::prepare(seqs.clone(), 16, &a);
    let engine = SearchEngine::paper_default();
    let cells = db.total_cells(query.len());

    micro::section("pipeline (cells/s as elem/s)");

    micro::run("prepare", cells, || {
        PreparedDb::prepare(seqs.clone(), 16, &a)
    });

    for variant in ["no-vec-sp", "simd-sp", "intrinsic-qp", "intrinsic-sp"] {
        let cfg = SearchConfig::best(1).with_variant(sw_cli_like_variant(variant));
        micro::run(&format!("search/{variant}"), cells, || {
            engine.search(&query, &db, &cfg)
        });
    }

    let hetero = HeteroEngine::new(engine.clone());
    let plan = hetero.plan_split(&db, query.len(), 0.55);
    let cfg = SearchConfig::best(1);
    micro::run("hetero-55pct (static split)", cells, || {
        hetero.search(&query, &db, &plan, &cfg, &cfg)
    });

    let dyn_cfg = HeteroSearchConfig::best(1, 1);
    micro::run("hetero dual-pool (1+1)", cells, || {
        hetero.search_dynamic(&query, &db, &plan, &dyn_cfg)
    });
}

/// Minimal local variant parser (avoids a dependency on sw-cli).
fn sw_cli_like_variant(label: &str) -> KernelVariant {
    use sw_kernels::{ProfileMode, Vectorization};
    let (vec, profile) = match label {
        "no-vec-sp" => (Vectorization::NoVec, ProfileMode::Sequence),
        "simd-sp" => (Vectorization::Guided, ProfileMode::Sequence),
        "intrinsic-qp" => (Vectorization::Intrinsic, ProfileMode::Query),
        "intrinsic-sp" => (Vectorization::Intrinsic, ProfileMode::Sequence),
        _ => unreachable!("labels are fixed above"),
    };
    KernelVariant {
        vec,
        profile,
        blocking: true,
    }
}
