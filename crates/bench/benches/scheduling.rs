//! Micro-benchmarks of the scheduling layer: discrete-event simulator
//! throughput (it must handle ~677k-task pools for the pooled figures),
//! real-executor dispatch overhead per policy, and the dual-pool
//! scheduler's queue + metrics overhead. Std-only harness, see
//! `sw_bench::micro`.

use sw_sched::{
    run_dual_pool, run_parallel, simulate, DualPoolConfig, ExecutorConfig, MetricsSink, Policy,
};

fn main() {
    sw_bench::micro::section("desim (tasks/s as elem/s)");
    for &n in &[1_000usize, 100_000] {
        let costs: Vec<f64> = (0..n)
            .map(|i| ((i * 7919) % 97 + 1) as f64 * 1e-4)
            .collect();
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            sw_bench::micro::run(&format!("{}/{n}", policy.label()), n as u64, || {
                simulate(&costs, 240, policy)
            });
        }
    }

    sw_bench::micro::section("executor dispatch (tasks/s)");
    let n = 10_000usize;
    for policy in [
        Policy::Static,
        Policy::Dynamic { chunk: 16 },
        Policy::guided(),
    ] {
        let cfg = ExecutorConfig { workers: 2, policy };
        sw_bench::micro::run(&format!("dispatch/{}", policy.label()), n as u64, || {
            run_parallel(n, cfg, |i| i as u64).iter().sum::<u64>()
        });
    }

    sw_bench::micro::section("dual-pool dispatch (tasks/s)");
    for (cpu_w, accel_w) in [(1usize, 1usize), (2, 2), (4, 4)] {
        let cfg = DualPoolConfig::new(cpu_w, accel_w);
        sw_bench::micro::run(&format!("dual_pool/{cpu_w}+{accel_w}"), n as u64, || {
            let sink = MetricsSink::new();
            run_dual_pool(n, cfg, |_| 1, |_d, i| i as u64, &sink)
                .iter()
                .sum::<u64>()
        });
    }

    // The coordinator-side fabric costs: seeded fault-plan generation
    // (every drilled search pays it once) and the k-way merge with a
    // replica-substituted shard column — the exact path the failover
    // drills exercise, so a regression here slows every net-fault CI
    // job.
    sw_bench::micro::section("shard fabric (plans/s, merges/s)");
    sw_bench::micro::run("net_fault_plan/seeded-16", 1, || {
        sw_sched::NetFaultPlan::seeded(42, 16, 16).specs.len()
    });
    let shard_col = |shard: u64, salt: u64| -> Vec<sw_serve::client::HitLine> {
        (0..64u64)
            .map(|i| sw_serve::client::HitLine {
                rank: i + 1,
                // Duplicated scores force the (score, id) tie-break,
                // the merge's worst case.
                score: 500 - (i as i64 / 4),
                id: shard * 1_000 + (i * 7919 + salt) % 997,
                header: format!("sp|B{shard}x{i}|bench"),
            })
            .collect()
    };
    for n_shards in [2u64, 8] {
        sw_bench::micro::run(&format!("merge_top_k/{n_shards}-shards"), n_shards, || {
            // Shard 0's column comes from "the replica" (salt differs):
            // same shape, different ids — the merge must stay cheap
            // whichever replica answered.
            let cols: Vec<Vec<sw_serve::client::HitLine>> = (0..n_shards)
                .map(|s| shard_col(s, if s == 0 { 13 } else { 0 }))
                .collect();
            sw_serve::coord::merge_hits(cols, 32).len()
        });
    }
}
