//! Criterion benchmarks of the scheduling layer: discrete-event simulator
//! throughput (it must handle ~677k-task pools for the pooled figures)
//! and real-executor dispatch overhead per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use sw_sched::{run_parallel, simulate, ExecutorConfig, Policy};

fn bench_desim(c: &mut Criterion) {
    let mut group = c.benchmark_group("desim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    for &n in &[1_000usize, 100_000] {
        let costs: Vec<f64> = (0..n).map(|i| ((i * 7919) % 97 + 1) as f64 * 1e-4).collect();
        group.throughput(Throughput::Elements(n as u64));
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            group.bench_with_input(
                BenchmarkId::new(policy.label(), n),
                &costs,
                |b, costs| b.iter(|| simulate(costs, 240, policy)),
            );
        }
    }
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    let n = 10_000usize;
    group.throughput(Throughput::Elements(n as u64));
    for policy in [Policy::Static, Policy::Dynamic { chunk: 16 }, Policy::guided()] {
        group.bench_function(BenchmarkId::new("dispatch", policy.label()), |b| {
            let cfg = ExecutorConfig { workers: 2, policy };
            b.iter(|| run_parallel(n, cfg, |i| i as u64).iter().sum::<u64>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_desim, bench_executor);
criterion_main!(benches);
