//! Micro-benchmarks of the real kernels on the host (std-only harness,
//! see `sw_bench::micro`).
//!
//! These measure *this machine's* throughput (cells/s) for every kernel
//! variant — the host-measured complement to the simulated device
//! figures. They also demonstrate the orderings the paper relies on:
//! profile layouts matter, explicit-lane code beats scalar by a wide
//! margin, and blocking is free for short queries.

use sw_bench::micro;
use sw_kernels::banded::sw_banded;
use sw_kernels::blocked::{sw_blocked_sp, BlockedWorkspace};
use sw_kernels::guided::{sw_guided_qp, sw_guided_sp, GuidedWorkspace};
use sw_kernels::intertask::{sw_lanes_qp, sw_lanes_sp, Workspace};
use sw_kernels::narrow::{sw_adaptive_sp, NarrowWorkspace};
use sw_kernels::scalar::{sw_score_scalar, SwParams};
use sw_kernels::striped::{sw_striped, StripedProfile};
use sw_seq::gen::SwissProtGen;
use sw_seq::{Alphabet, SeqId};
use sw_swdb::batch::pad_code;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile, SequenceProfileI8};

const LANES: usize = 16;
const QUERY_LEN: u32 = 400;
const SUBJECT_LEN: u32 = 360;

struct Fixture {
    params: SwParams,
    query: Vec<u8>,
    subjects: Vec<Vec<u8>>,
    batch: LaneBatch,
    qp: QueryProfile,
    sp: SequenceProfile,
    cells: u64,
}

fn fixture() -> Fixture {
    let a = Alphabet::protein();
    let params = SwParams::paper_default();
    let mut g = SwissProtGen::new(355.4, 99);
    let query = g.sequence("q", QUERY_LEN).residues;
    let subjects: Vec<Vec<u8>> = (0..LANES)
        .map(|_| g.sequence("s", SUBJECT_LEN).residues)
        .collect();
    let refs: Vec<(SeqId, &[u8])> = subjects
        .iter()
        .enumerate()
        .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
        .collect();
    let batch = LaneBatch::pack(LANES, &refs, pad_code(&a));
    let qp = QueryProfile::build(&query, &params.matrix, &a);
    let sp = SequenceProfile::build(&batch, &params.matrix, &a);
    let cells = batch.real_cells(query.len());
    Fixture {
        params,
        query,
        subjects,
        batch,
        qp,
        sp,
        cells,
    }
}

fn main() {
    let f = fixture();
    micro::section("kernels (cells/s as elem/s)");

    micro::run("scalar (no-vec)", f.cells, || {
        let mut total = 0i64;
        for s in &f.subjects {
            total += sw_score_scalar(&f.query, s, &f.params);
        }
        total
    });

    let mut gws = GuidedWorkspace::new();
    micro::run("guided-QP", f.cells, || {
        sw_guided_qp(&f.qp, &f.batch, &f.params.gap, &mut gws)
    });
    let mut gws = GuidedWorkspace::new();
    micro::run("guided-SP", f.cells, || {
        sw_guided_sp(&f.query, &f.sp, &f.batch, &f.params.gap, &mut gws)
    });

    let mut iws = Workspace::<LANES>::new();
    micro::run("intrinsic-QP", f.cells, || {
        sw_lanes_qp::<LANES>(&f.qp, &f.batch, &f.params.gap, &mut iws)
    });
    let mut iws = Workspace::<LANES>::new();
    micro::run("intrinsic-SP", f.cells, || {
        sw_lanes_sp::<LANES>(&f.query, &f.sp, &f.batch, &f.params.gap, &mut iws)
    });

    let mut bws = BlockedWorkspace::<LANES>::new();
    micro::run("blocked-SP", f.cells, || {
        sw_blocked_sp::<LANES>(&f.query, &f.sp, &f.batch, &f.params.gap, 2048, &mut bws)
    });

    let sp8 = SequenceProfileI8::from_wide(&f.sp);
    let mut ws8 = NarrowWorkspace::<LANES>::new();
    let mut ws16 = Workspace::<LANES>::new();
    micro::run("adaptive i8->i16", f.cells, || {
        sw_adaptive_sp::<LANES>(
            &f.query,
            &f.sp,
            &sp8,
            &f.batch,
            &f.params.gap,
            &mut ws8,
            &mut ws16,
        )
    });

    micro::run("banded r=32 (per pair)", f.cells, || {
        let mut total = 0i64;
        for s in &f.subjects {
            total += sw_banded(&f.query, s, &f.params, 0, 32);
        }
        total
    });

    let profile = StripedProfile::<LANES>::build(&f.query, &f.params);
    micro::run("striped (intra-task)", f.cells, || {
        let mut total = 0i64;
        for s in &f.subjects {
            total += sw_striped(&profile, s, &f.params).score;
        }
        total
    });
}
