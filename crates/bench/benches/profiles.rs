//! Criterion benchmarks of profile construction — the per-batch cost the
//! analytic model charges the SP variants (and the reason Fig. 4/6 show a
//! rising trend with query length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use sw_kernels::SwParams;
use sw_seq::gen::SwissProtGen;
use sw_seq::{Alphabet, SeqId};
use sw_swdb::batch::pad_code;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

fn bench_profiles(c: &mut Criterion) {
    let a = Alphabet::protein();
    let params = SwParams::paper_default();
    let mut g = SwissProtGen::new(355.4, 7);

    let mut group = c.benchmark_group("profiles");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1000));

    for &qlen in &[144u32, 1000, 5478] {
        let query = g.sequence("q", qlen).residues;
        group.throughput(Throughput::Elements(qlen as u64 * 24));
        group.bench_with_input(BenchmarkId::new("query_profile", qlen), &query, |b, q| {
            b.iter(|| QueryProfile::build(q, &params.matrix, &a))
        });
    }

    for &lanes in &[8usize, 16, 32] {
        let subjects: Vec<Vec<u8>> = (0..lanes).map(|_| g.sequence("s", 355).residues).collect();
        let refs: Vec<(SeqId, &[u8])> =
            subjects.iter().enumerate().map(|(i, s)| (SeqId(i as u32), s.as_slice())).collect();
        let batch = LaneBatch::pack(lanes, &refs, pad_code(&a));
        group.throughput(Throughput::Elements(24 * batch.padded_len() as u64 * lanes as u64));
        group.bench_with_input(BenchmarkId::new("sequence_profile", lanes), &batch, |b, batch| {
            b.iter(|| SequenceProfile::build(batch, &params.matrix, &a))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
