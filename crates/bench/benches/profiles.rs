//! Micro-benchmarks of profile construction — the per-batch cost the
//! analytic model charges the SP variants (and the reason Fig. 4/6 show a
//! rising trend with query length). Std-only harness, see
//! `sw_bench::micro`.

use sw_bench::micro;
use sw_kernels::SwParams;
use sw_seq::gen::SwissProtGen;
use sw_seq::{Alphabet, SeqId};
use sw_swdb::batch::pad_code;
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

fn main() {
    let a = Alphabet::protein();
    let params = SwParams::paper_default();
    let mut g = SwissProtGen::new(355.4, 7);

    micro::section("profiles (profile entries as elem/s)");

    for &qlen in &[144u32, 1000, 5478] {
        let query = g.sequence("q", qlen).residues;
        micro::run(&format!("query_profile/{qlen}"), qlen as u64 * 24, || {
            QueryProfile::build(&query, &params.matrix, &a)
        });
    }

    for &lanes in &[8usize, 16, 32] {
        let subjects: Vec<Vec<u8>> = (0..lanes).map(|_| g.sequence("s", 355).residues).collect();
        let refs: Vec<(SeqId, &[u8])> = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        let batch = LaneBatch::pack(lanes, &refs, pad_code(&a));
        let elements = 24 * batch.padded_len() as u64 * lanes as u64;
        micro::run(&format!("sequence_profile/{lanes}"), elements, || {
            SequenceProfile::build(&batch, &params.matrix, &a)
        });
    }
}
