//! Markdown + CSV table rendering for the figure binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("## {}\n\n", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&line(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print markdown to stdout and write CSV to `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_markdown());
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Ok(mut f) = fs::File::create(&path) {
                let _ = f.write_all(self.to_csv().as_bytes());
                println!("(csv written to {})", path.display());
            }
        }
    }
}

/// Format a GCUPS value for a table cell.
pub fn gcups(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.row(vec!["1".into(), "30.4".into()]);
        t.row(vec!["32".into(), "62.6".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("## Demo"));
        assert!(md.contains("|  x | value |"));
        assert!(md.contains("| 32 |  62.6 |"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn gcups_formatting() {
        assert_eq!(gcups(30.42), "30.4");
        assert_eq!(gcups(62.551), "62.6");
    }
}
