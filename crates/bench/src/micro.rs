//! Minimal self-timing micro-benchmark harness — a std-only stand-in for
//! criterion, which the offline dependency budget excludes (DESIGN.md).
//!
//! Each measurement warms up briefly, calibrates an iteration count to a
//! fixed measurement window, then prints one line: mean wall-clock per
//! iteration and element throughput. No statistics beyond the mean — the
//! `benches/` targets exist to show *orderings* (intrinsic beats scalar,
//! SP beats QP for long queries), not to detect 1% regressions.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measure `f` and print one line.
///
/// `elements` is the per-iteration work (DP cells, tasks) used for the
/// throughput column; pass 0 to suppress the rate.
pub fn run<R>(label: &str, elements: u64, mut f: impl FnMut() -> R) {
    let warm = Instant::now();
    while warm.elapsed() < Duration::from_millis(200) {
        black_box(f());
    }
    let once_t = Instant::now();
    black_box(f());
    let once = once_t.elapsed().max(Duration::from_nanos(100));
    let iters = (Duration::from_millis(300).as_nanos() / once.as_nanos()).clamp(5, 100_000) as u32;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = t.elapsed() / iters;
    if elements > 0 {
        let rate = elements as f64 / per.as_secs_f64();
        println!("{label:<34} {per:>12.3?}/iter  {:>9.1} Melem/s", rate / 1e6);
    } else {
        println!("{label:<34} {per:>12.3?}/iter");
    }
}

/// Print a section heading for a group of [`run`] lines.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}
