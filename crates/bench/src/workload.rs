//! Workload construction shared by the figure binaries.
//!
//! The evaluation workload is the synthetic Swiss-Prot 2013_11 stand-in
//! (DESIGN.md §2) plus the paper's 20-query set. Figures that aggregate
//! over the query set pool all (query × batch) tasks into one parallel
//! region, exactly as the paper's Algorithm 1 loop over `|Q| × |vD|`
//! does; per-query-length figures use a streamed (steady-state)
//! measurement.

use sw_core::prepare::shapes_from_lengths;
use sw_core::{simulate_search, SimConfig, SimReport};
use sw_device::{CostModel, TaskShape};
use sw_kernels::KernelVariant;
use sw_seq::gen::{generate_lengths, DbSpec};
use sw_seq::swissprot::QUERY_SET;

/// The simulation workload: database lengths + query lengths.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Database sequence lengths (unsorted).
    pub db_lens: Vec<u32>,
    /// The 20 paper query lengths, ascending.
    pub query_lens: Vec<u32>,
}

impl Workload {
    /// Full Swiss-Prot scale (541 561 sequences) with the paper's queries.
    pub fn paper_scale(seed: u64) -> Self {
        Workload {
            db_lens: generate_lengths(&DbSpec::swissprot_full(seed)),
            query_lens: QUERY_SET.iter().map(|q| q.len).collect(),
        }
    }

    /// Reduced scale for quick runs/tests (`fraction` of the sequences).
    pub fn scaled(fraction: f64, seed: u64) -> Self {
        Workload {
            db_lens: generate_lengths(&DbSpec::swissprot_scaled(fraction, seed)),
            query_lens: QUERY_SET.iter().map(|q| q.len).collect(),
        }
    }

    /// Task shapes for a single query length at the given lane width.
    pub fn shapes(&self, lanes: usize, query_len: usize) -> Vec<TaskShape> {
        shapes_from_lengths(&self.db_lens, lanes, query_len)
    }

    /// Task shapes pooled over the whole query set — the Algorithm 1
    /// parallel region (`for t ≤ |Q| · |vD|`).
    pub fn pooled_shapes(&self, lanes: usize) -> Vec<TaskShape> {
        let mut out = Vec::new();
        for &q in &self.query_lens {
            out.extend(self.shapes(lanes, q as usize));
        }
        out
    }

    /// Simulate the pooled 20-query run on `model` (Fig. 3 / Fig. 5
    /// measurement).
    pub fn simulate_pooled(
        &self,
        model: &CostModel,
        variant: KernelVariant,
        threads: u32,
    ) -> SimReport {
        let shapes = self.pooled_shapes(model.device.lanes_i16());
        let cfg = SimConfig {
            variant,
            ..SimConfig::best(threads)
        };
        simulate_search(model, &shapes, &cfg)
    }

    /// Simulate a steady-state single-query measurement (Fig. 4 / Fig. 6 /
    /// Fig. 7 points).
    pub fn simulate_query(
        &self,
        model: &CostModel,
        variant: KernelVariant,
        threads: u32,
        query_len: usize,
    ) -> SimReport {
        let shapes = self.shapes(model.device.lanes_i16(), query_len);
        let cfg = SimConfig {
            variant,
            ..SimConfig::streamed(threads, 8)
        };
        simulate_search(model, &shapes, &cfg)
    }
}

/// The six Fig. 3/5 variant labels in plotting order.
pub fn fig_variants() -> Vec<(String, KernelVariant)> {
    KernelVariant::fig3_set()
        .into_iter()
        .map(|v| (v.label(), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_pool_correctly() {
        let w = Workload::scaled(0.002, 3);
        let single: usize = w.shapes(16, 144).len();
        let pooled = w.pooled_shapes(16);
        assert_eq!(pooled.len(), single * 20);
    }

    #[test]
    fn paper_scale_counts() {
        let w = Workload::paper_scale(1);
        assert_eq!(w.db_lens.len(), 541_561);
        assert_eq!(w.query_lens.len(), 20);
        assert_eq!(w.query_lens[0], 144);
        assert_eq!(w.query_lens[19], 5478);
    }

    #[test]
    fn pooled_simulation_runs() {
        let w = Workload::scaled(0.01, 3);
        let r = w.simulate_pooled(&CostModel::xeon(), KernelVariant::best(), 32);
        assert!(r.gcups > 10.0, "pooled xeon {}", r.gcups);
    }
}
