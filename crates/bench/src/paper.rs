//! The paper's published numbers, for side-by-side comparison columns.
//!
//! Every value here is quoted directly from Rucci et al., CLUSTER 2014,
//! §V; `EXPERIMENTS.md` records how our simulated results compare.

/// Fig. 3 / §V-C1: Xeon intrinsic-SP peak at 32 threads.
pub const XEON_INTRINSIC_SP_32T: f64 = 30.4;

/// Fig. 4: Xeon simd-SP at 32 threads, long queries.
pub const XEON_SIMD_SP_32T: f64 = 25.1;

/// Fig. 4: Xeon intrinsic-SP reaches 32 GCUPS at the longest query.
pub const XEON_INTRINSIC_SP_LONGEST: f64 = 32.0;

/// §V-C1: Xeon parallel efficiency at 4 / 16 / 32 threads (intrinsic-SP).
pub const XEON_EFFICIENCY: [(u32, f64); 3] = [(4, 0.99), (16, 0.88), (32, 0.70)];

/// Fig. 5 / §V-C2: Phi rates at 240 threads.
pub const PHI_SIMD_QP_240T: f64 = 13.6;
/// Phi simd-SP at 240 threads.
pub const PHI_SIMD_SP_240T: f64 = 14.5;
/// Phi intrinsic-QP at 240 threads.
pub const PHI_INTRINSIC_QP_240T: f64 = 27.1;
/// Phi intrinsic-SP at 240 threads.
pub const PHI_INTRINSIC_SP_240T: f64 = 34.9;

/// Fig. 8 / §V-C3: best heterogeneous configuration.
pub const HETERO_BEST_GCUPS: f64 = 62.6;
/// Fig. 8: Phi share of the workload at the optimum.
pub const HETERO_BEST_PHI_FRACTION: f64 = 0.55;

/// §V-C3: TDP values quoted by the paper (Xeon chip, Phi).
pub const TDP_XEON_CHIP_W: f64 = 120.0;
/// Phi TDP as quoted.
pub const TDP_PHI_W: f64 = 240.0;

/// §V-B: Swiss-Prot release 2013_11 statistics.
pub const DB_SEQUENCES: u64 = 541_561;
/// Total residues of the release.
pub const DB_RESIDUES: u64 = 192_480_382;
/// Longest database sequence.
pub const DB_MAX_LEN: u64 = 35_213;

/// Relative deviation of `ours` from `paper`.
pub fn deviation(ours: f64, paper: f64) -> f64 {
    (ours - paper) / paper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        assert!((deviation(31.0, 30.4) - 0.0197).abs() < 1e-3);
        assert_eq!(deviation(30.4, 30.4), 0.0);
    }

    #[test]
    fn hetero_is_nearly_additive() {
        // The paper notes the combined rate is "almost the combination of
        // their individual throughputs".
        let sum = XEON_INTRINSIC_SP_32T + PHI_INTRINSIC_SP_240T;
        assert!((sum - HETERO_BEST_GCUPS).abs() < 3.0);
    }
}
