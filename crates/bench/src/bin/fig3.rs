//! Figure 3: performance on the Intel Xeon with different thread counts.
//!
//! Paper: six variants (no-vec / simd / intrinsic × QP / SP), threads
//! 1–32, Swiss-Prot, 20-query workload; best result 30.4 GCUPS at
//! intrinsic-SP × 32 threads; efficiency 99 % / 88 % / 70 % at 4/16/32
//! threads.

use sw_bench::{paper, table, Table, Workload};
use sw_device::CostModel;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let model = CostModel::xeon();
    let threads = [1u32, 2, 4, 8, 16, 32];
    let variants = sw_bench::workload::fig_variants();

    let mut headers: Vec<&str> = vec!["threads"];
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(
        "Fig. 3 — Xeon GCUPS vs threads (paper peak: 30.4 intrinsic-SP @ 32T)",
        &headers,
    );
    for &n in &threads {
        let mut row = vec![n.to_string()];
        for (_, v) in &variants {
            let r = workload.simulate_pooled(&model, *v, n);
            row.push(table::gcups(r.gcups));
        }
        t.row(row);
    }
    t.emit("fig3");

    // Efficiency check quoted in §V-C1.
    let best = variants.last().expect("six variants").1;
    let g1 = workload.simulate_pooled(&model, best, 1).gcups;
    println!("intrinsic-SP efficiency vs 1 thread:");
    for (n, paper_e) in paper::XEON_EFFICIENCY {
        let g = workload.simulate_pooled(&model, best, n).gcups;
        println!(
            "  {n:>2} threads: {:.2} (paper: {paper_e:.2})",
            g / (n as f64 * g1)
        );
    }
}
