//! Environment/ablation tables: the §V-A testbed inventory, the §V-B
//! database statistics, the scheduling-policy ablation (§IV prose), and
//! the energy study the paper lists as future work (§V-C3).

use sw_bench::{paper, table, Table, Workload};
use sw_core::{simulate_hetero, simulate_search, SimConfig};
use sw_device::{presets, CostModel};
use sw_sched::Policy;
use sw_seq::gen::{generate_database, DbSpec};
use sw_swdb::{DbStats, SequenceDatabase};

fn tab_environment() {
    let mut t = Table::new(
        "Tab. A — §V-A testbed inventory (simulated device models)",
        &[
            "device", "cores", "threads", "GHz", "vector", "gather", "L2/core", "LLC", "TDP_W",
        ],
    );
    for d in [presets::xeon_e5_2670_pair(), presets::xeon_phi_60c()] {
        t.row(vec![
            d.name.to_string(),
            d.cores.to_string(),
            d.max_threads().to_string(),
            format!("{:.2}", d.freq_ghz),
            format!("{}b x{}", d.vector_bits, d.lanes_i16()),
            d.has_gather.to_string(),
            format!("{}K", d.l2_bytes / 1024),
            format!("{}M", d.llc_bytes / (1024 * 1024)),
            format!("{:.0}", d.tdp_watts),
        ]);
    }
    t.emit("tab_env");
}

fn tab_database(scale: f64) {
    // Materialise a scaled synthetic database for honest statistics; the
    // full 541 561-sequence version is used by the figure harness through
    // the lengths-only path.
    let spec = if scale >= 1.0 {
        DbSpec::swissprot_full(1)
    } else {
        DbSpec::swissprot_scaled(scale, 1)
    };
    let lens = sw_seq::gen::generate_lengths(&spec);
    let n = lens.len() as u64;
    let residues: u64 = lens.iter().map(|&l| l as u64).sum();
    let max = *lens.iter().max().unwrap_or(&0) as u64;

    let mut t = Table::new(
        "Tab. B — §V-B database statistics (synthetic Swiss-Prot stand-in vs paper)",
        &["", "sequences", "residues", "max_len", "mean_len"],
    );
    t.row(vec![
        "synthetic".into(),
        n.to_string(),
        residues.to_string(),
        max.to_string(),
        format!("{:.1}", residues as f64 / n as f64),
    ]);
    t.row(vec![
        "paper (2013_11)".into(),
        paper::DB_SEQUENCES.to_string(),
        paper::DB_RESIDUES.to_string(),
        paper::DB_MAX_LEN.to_string(),
        format!(
            "{:.1}",
            paper::DB_RESIDUES as f64 / paper::DB_SEQUENCES as f64
        ),
    ]);
    t.emit("tab_db");

    // A small materialised sample proves the residue-level generator too.
    let sample = generate_database(&DbSpec::tiny(1));
    let stats = DbStats::compute(&SequenceDatabase::from_sequences(sample));
    println!(
        "(residue-level sample: {} seqs, mean {:.1})\n",
        stats.n_seqs, stats.mean_len
    );
}

fn tab_scheduling(workload: &Workload) {
    // §IV: "dynamic outperforms static significantly. The performance
    // difference with guided is slightly minor."
    let mut t = Table::new(
        "Tab. C — scheduling-policy ablation, intrinsic-SP, pooled 20-query workload",
        &["device", "static", "guided", "dynamic"],
    );
    for (model, threads) in [(CostModel::xeon(), 32u32), (CostModel::phi(), 240u32)] {
        let mut row = vec![model.device.name.to_string()];
        for policy in [Policy::Static, Policy::guided(), Policy::dynamic()] {
            let shapes = workload.pooled_shapes(model.device.lanes_i16());
            let cfg = SimConfig {
                policy,
                ..SimConfig::best(threads)
            };
            let r = simulate_search(&model, &shapes, &cfg);
            row.push(table::gcups(r.gcups));
        }
        t.row(row);
    }
    t.emit("tab_sched");
}

fn tab_energy(workload: &Workload) {
    // The paper's §V-C3 future work: power-aware workload distribution.
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);
    let mut t = Table::new(
        "Tab. D — energy study (paper future work): GCUPS vs GCUPS/W across splits",
        &["phi_share_%", "GCUPS", "avg_W", "GCUPS_per_W"],
    );
    for step in 0..=10 {
        let frac = step as f64 / 10.0;
        let r = simulate_hetero(
            (&xeon, &cpu_cfg),
            (&phi, &phi_cfg),
            &workload.db_lens,
            2000,
            frac,
        );
        let avg_w = (r.cpu_energy.joules + r.accel_energy.joules) / r.seconds;
        t.row(vec![
            format!("{:.0}", frac * 100.0),
            table::gcups(r.gcups),
            format!("{avg_w:.0}"),
            format!("{:.3}", r.gcups_per_watt()),
        ]);
    }
    t.emit("tab_energy");
}

fn tab_padding(workload: &Workload) {
    // Inter-task padding overhead at the two lane widths — the cost the
    // sorted database keeps small.
    let mut t = Table::new(
        "Tab. E — lane-padding overhead after length sorting",
        &["lanes", "padded/real"],
    );
    for lanes in [8usize, 16, 32] {
        let shapes = workload.shapes(lanes, 1000);
        let real: u64 = shapes.iter().map(|s| s.real_cells).sum();
        let padded: u64 = shapes.iter().map(|s| s.padded_cells()).sum();
        t.row(vec![
            lanes.to_string(),
            format!("{:.4}", padded as f64 / real as f64),
        ]);
    }
    t.emit("tab_padding");
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    tab_environment();
    tab_database(scale);
    tab_scheduling(&workload);
    tab_energy(&workload);
    tab_padding(&workload);
}
