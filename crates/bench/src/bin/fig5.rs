//! Figure 5: performance of the Xeon Phi variants with a variable number
//! of threads.
//!
//! Paper: threads 30–240; guided vectorization reaches 13.6 / 14.5 GCUPS
//! (QP / SP), intrinsics 27.1 / 34.9; near-linear thread scaling; hardware
//! gather keeps the intrinsic-QP penalty mild.

use sw_bench::{table, Table, Workload};
use sw_device::CostModel;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let model = CostModel::phi();
    let threads = [30u32, 60, 120, 180, 240];
    let variants = sw_bench::workload::fig_variants();

    let mut headers: Vec<&str> = vec!["threads"];
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(
        "Fig. 5 — Xeon Phi GCUPS vs threads (paper @240T: simd 13.6/14.5, intrinsic 27.1/34.9)",
        &headers,
    );
    for &n in &threads {
        let mut row = vec![n.to_string()];
        for (_, v) in &variants {
            let r = workload.simulate_pooled(&model, *v, n);
            row.push(table::gcups(r.gcups));
        }
        t.row(row);
    }
    t.emit("fig5");
}
