//! Figure 6: performance of the Xeon Phi variants with variable query
//! lengths.
//!
//! Paper: 240 threads; throughput *rises* with query length (more
//! parallelism to exploit, per-batch overheads amortise); SP beats QP
//! thanks to its consecutive memory accesses; intrinsic ≫ guided.

use sw_bench::{table, Table, Workload};
use sw_device::CostModel;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let model = CostModel::phi();
    let variants = sw_bench::workload::fig_variants();

    let mut headers: Vec<&str> = vec!["query_len"];
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(
        "Fig. 6 — Xeon Phi GCUPS vs query length @ 240 threads (paper peak: 34.9 intrinsic-SP)",
        &headers,
    );
    for &q in &workload.query_lens.clone() {
        let mut row = vec![q.to_string()];
        for (_, v) in &variants {
            let r = workload.simulate_query(&model, *v, 240, q as usize);
            row.push(table::gcups(r.gcups));
        }
        t.row(row);
    }
    t.emit("fig6");
}
