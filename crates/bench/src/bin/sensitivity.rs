//! Sensitivity experiment — quantifying the paper's motivation.
//!
//! §I: *"BLAST … increase[s] speed at the cost of reduced sensitivity"*
//! and exact SW *"guarantees the optimal alignment, which is essential in
//! some applications."* This binary measures that trade-off: a family of
//! homologs is planted into a decoy database at increasing mutation
//! rates; the exact engine recovers all of them by construction, while
//! the seed-and-extend heuristic's recall decays — exactly the loss the
//! paper's acceleration of exact SW exists to avoid.

use sw_bench::Table;
use sw_core::{PreparedDb, SearchConfig, SearchEngine};
use sw_heuristic::HeuristicEngine;
use sw_seq::gen::SwissProtGen;
use sw_seq::{Alphabet, EncodedSeq};
use sw_swdb::SequenceDatabase;

const N_HOMOLOGS: usize = 40;
const N_DECOYS: usize = 400;
const QUERY_LEN: u32 = 300;
/// Homology is confined to a short domain — the hard case for seeding:
/// a 42-residue conserved region inside otherwise unrelated sequence.
const DOMAIN_LEN: usize = 42;
const DOMAIN_AT: usize = 120;

fn mutate(seq: &[u8], rate: f64, rng: &mut impl rand_like::RngLike) -> Vec<u8> {
    seq.iter()
        .map(|&r| if rng.chance(rate) { rng.residue() } else { r })
        .collect()
}

/// Minimal deterministic RNG facade so this binary needs no extra deps.
mod rand_like {
    pub trait RngLike {
        fn next_u64(&mut self) -> u64;
        fn chance(&mut self, p: f64) -> bool {
            (self.next_u64() as f64 / u64::MAX as f64) < p
        }
        fn residue(&mut self) -> u8 {
            (self.next_u64() % 20) as u8
        }
    }
    /// SplitMix64.
    pub struct Mix(pub u64);
    impl RngLike for Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

fn main() {
    let alphabet = Alphabet::protein();
    let mut g = SwissProtGen::new(300.0, 77);
    let query = g.sequence("query", QUERY_LEN);
    let domain = &query.residues[DOMAIN_AT..DOMAIN_AT + DOMAIN_LEN];

    let mut t = Table::new(
        "Sensitivity — exact SW vs seed-and-extend (paper §I motivation)",
        &[
            "mutation_%",
            "sw_recall",
            "heuristic_recall",
            "work_saved_%",
        ],
    );

    for &rate in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut rng = rand_like::Mix((rate * 1e6) as u64);
        let mut seqs: Vec<EncodedSeq> = Vec::new();
        // Homologs first (ids 0..N_HOMOLOGS): random sequence carrying a
        // mutated copy of the query's domain.
        for i in 0..N_HOMOLOGS {
            let mut residues = g.sequence("tmp", 300).residues;
            let mutated = mutate(domain, rate, &mut rng);
            residues[100..100 + DOMAIN_LEN].copy_from_slice(&mutated);
            seqs.push(EncodedSeq {
                header: format!("hom{i}").into(),
                residues,
            });
        }
        for i in 0..N_DECOYS {
            seqs.push(g.sequence(&format!("decoy{i}"), 300));
        }

        // Both engines rank by exact SW score; recall@40 = planted
        // homologs retrieved in the top 40. The heuristic can only lose
        // candidates it skipped, so heuristic recall <= exact recall.
        let exact_engine = SearchEngine::paper_default();
        let db = PreparedDb::prepare(seqs.clone(), 8, &alphabet);
        let exact = exact_engine.search(&query.residues, &db, &SearchConfig::best(2));
        let sw_recall = exact
            .top(N_HOMOLOGS)
            .iter()
            .filter(|h| h.id.0 < N_HOMOLOGS as u32)
            .count() as f64
            / N_HOMOLOGS as f64;

        let flat_db = SequenceDatabase::from_sequences(seqs);
        let heuristic = HeuristicEngine::paper_default();
        let h = heuristic.search(&query.residues, &flat_db);
        let found = h
            .hits
            .iter()
            .take(N_HOMOLOGS)
            .filter(|x| x.id.0 < N_HOMOLOGS as u32)
            .count();
        t.row(vec![
            format!("{:.0}", rate * 100.0),
            format!("{sw_recall:.2}"),
            format!("{:.2}", found as f64 / N_HOMOLOGS as f64),
            format!("{:.0}", h.work_saved() * 100.0),
        ]);
    }
    t.emit("sensitivity");
    println!(
        "Exact SW pays the full DP cost for guaranteed recall; the heuristic\n\
         trades recall for skipped work as homology gets more remote — the\n\
         trade-off the paper's exact-SW acceleration exists to avoid."
    );
}
