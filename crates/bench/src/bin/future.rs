//! Future-coprocessor projection — §V-C2's closing claim, quantified.
//!
//! *"This fact suggests that future coprocessors with more cores and
//! threads per core will provide better GCUPS."* This binary runs the
//! same simulated workload across the KNC the paper used, its bigger
//! sibling (7120) and two Knights Landing parts, with cost constants
//! derived from the KNC calibration (see `sw_device::presets::knl_costs`).

use sw_bench::{table, Table, Workload};
use sw_core::{simulate_search, SimConfig};
use sw_device::{presets, CostModel};
use sw_kernels::KernelVariant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };

    let devices = [
        CostModel::new(presets::xeon_phi_60c(), presets::phi_costs()),
        CostModel::new(presets::xeon_phi_7120(), presets::phi_costs()),
        CostModel::new(presets::xeon_phi_knl_7210(), presets::knl_costs()),
        CostModel::new(presets::xeon_phi_knl_7290(), presets::knl_costs()),
    ];

    let mut t = Table::new(
        "Future-coprocessor projection — intrinsic-SP, all hardware threads",
        &["device", "threads", "GCUPS", "GCUPS_per_W", "vs_paper_phi"],
    );
    let baseline = {
        let m = &devices[0];
        let shapes = workload.shapes(m.device.lanes_i16(), 2000);
        simulate_search(m, &shapes, &SimConfig::streamed(m.device.max_threads(), 8)).gcups
    };
    for m in &devices {
        let threads = m.device.max_threads();
        let shapes = workload.shapes(m.device.lanes_i16(), 2000);
        let cfg = SimConfig {
            variant: KernelVariant::best(),
            ..SimConfig::streamed(threads, 8)
        };
        let r = simulate_search(m, &shapes, &cfg);
        t.row(vec![
            m.device.name.to_string(),
            threads.to_string(),
            table::gcups(r.gcups),
            format!("{:.3}", r.gcups / m.device.tdp_watts),
            format!("{:.2}x", r.gcups / baseline),
        ]);
    }
    t.emit("future");
    println!(
        "The paper's scaling claim holds in the model: more cores, higher\n\
         clocks and an out-of-order pipeline (KNL) compound to >2x the\n\
         KNC rate on the identical portable kernel."
    );
}
