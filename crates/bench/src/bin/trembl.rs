//! Larger-database study — the paper's §VI future work.
//!
//! *"We are also interested in evaluating the performance of these
//! algorithms with larger sequences databases, as UniProt-TrEMBL. This
//! will allow us to asses the impact of transferences between host and
//! coprocessor."*
//!
//! The crux: the Phi carries only 5 GB of GDDR5. Swiss-Prot's share fits
//! resident and is shipped once per session; a TrEMBL-scale share
//! (UniProt-TrEMBL 2013_11 held ≈ 15 G residues, ~76× Swiss-Prot) does
//! not, so every query re-streams the database across PCIe Gen2. This
//! binary sweeps the database scale and reports the transfer share of
//! wall-clock and the resulting GCUPS erosion — exactly the effect the
//! authors wanted to assess.

use sw_bench::{table, Table};
use sw_core::prepare::shapes_from_lengths;
use sw_core::simulate::split_lengths;
use sw_core::{simulate_search, SimConfig};
use sw_device::offload::OffloadSim;
use sw_device::{CostModel, PcieLink};
use sw_seq::gen::{generate_lengths, DbSpec};

/// Phi on-board memory (the paper's board: 5 GB GDDR5).
const PHI_MEMORY_BYTES: u64 = 5 * 1024 * 1024 * 1024;
/// Queries per session (the paper's evaluation set).
const QUERIES: usize = 20;
/// Representative query length.
const QUERY_LEN: usize = 2000;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let base = if scale >= 1.0 {
        generate_lengths(&DbSpec::swissprot_full(1))
    } else {
        generate_lengths(&DbSpec::swissprot_scaled(scale, 1))
    };
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cfg_cpu = SimConfig::streamed(32, 8);
    let cfg_phi = SimConfig::streamed(240, 8);

    let mut t = Table::new(
        "TrEMBL-scale transfer study (paper §VI future work) — 55 % Phi share, 20 queries",
        &[
            "db_scale",
            "db_gbytes",
            "phi_resident",
            "GCUPS",
            "transfer_share_%",
        ],
    );

    for &mult in &[1usize, 4, 16, 76] {
        // Scale the database by repeating the length sample.
        let mut lens = Vec::with_capacity(base.len() * mult);
        for _ in 0..mult {
            lens.extend_from_slice(&base);
        }
        let (cpu_lens, phi_lens) = split_lengths(&lens, 0.55);
        let phi_bytes: u64 = phi_lens.iter().map(|&l| l as u64).sum();
        let resident = phi_bytes <= PHI_MEMORY_BYTES;

        // Per-query compute times on each side.
        let cpu_shapes = shapes_from_lengths(&cpu_lens, xeon.device.lanes_i16(), QUERY_LEN);
        let phi_shapes = shapes_from_lengths(&phi_lens, phi.device.lanes_i16(), QUERY_LEN);
        let cpu_s = simulate_search(&xeon, &cpu_shapes, &cfg_cpu).seconds / 8.0;
        let phi_s = simulate_search(&phi, &phi_shapes, &cfg_phi).seconds / 8.0;

        // Offload timeline over the whole 20-query session.
        let link = phi.device.pcie.unwrap_or_else(PcieLink::gen2_x16);
        let mut sim = OffloadSim::new(link);
        let mut transfer_s = 0.0;
        for q in 0..QUERIES {
            // DB shipped once if resident, per query otherwise.
            let in_bytes = if resident && q > 0 {
                QUERY_LEN as u64
            } else {
                phi_bytes
            };
            transfer_s += link.transfer_time(in_bytes);
            let sig = sim.offload_async(in_bytes, phi_s, 4 * phi_lens.len() as u64, "phi");
            sim.host_compute(cpu_s, "cpu");
            sim.wait(sig);
        }
        let wall = sim.elapsed();
        let total_cells =
            QUERIES as u64 * QUERY_LEN as u64 * lens.iter().map(|&l| l as u64).sum::<u64>();
        t.row(vec![
            format!("{mult}x"),
            format!(
                "{:.1}",
                lens.iter().map(|&l| l as u64).sum::<u64>() as f64 / 1e9
            ),
            resident.to_string(),
            table::gcups(total_cells as f64 / wall / 1e9),
            format!("{:.1}", 100.0 * transfer_s / wall),
        ]);
    }
    t.emit("trembl");

    // Second axis: query length at the streamed (76x) scale. Compute per
    // query shrinks with M while the re-streamed transfer stays constant,
    // so short queries pay the visible price.
    let mut lens76 = Vec::with_capacity(base.len() * 76);
    for _ in 0..76 {
        lens76.extend_from_slice(&base);
    }
    let (cpu76, phi76) = split_lengths(&lens76, 0.55);
    let phi_bytes: u64 = phi76.iter().map(|&l| l as u64).sum();
    let mut t2 = Table::new(
        "Transfer share vs query length at the streamed 76x (TrEMBL) scale",
        &["query_len", "GCUPS", "transfer_share_%"],
    );
    for &q in &[144usize, 464, 1000, 2000, 5478] {
        let cpu_shapes = shapes_from_lengths(&cpu76, xeon.device.lanes_i16(), q);
        let phi_shapes = shapes_from_lengths(&phi76, phi.device.lanes_i16(), q);
        let cpu_s = simulate_search(&xeon, &cpu_shapes, &cfg_cpu).seconds / 8.0;
        let phi_s = simulate_search(&phi, &phi_shapes, &cfg_phi).seconds / 8.0;
        let link = phi.device.pcie.unwrap_or_else(PcieLink::gen2_x16);
        let mut sim = OffloadSim::new(link);
        let mut transfer_s = 0.0;
        for _ in 0..QUERIES {
            transfer_s += link.transfer_time(phi_bytes);
            let sig = sim.offload_async(phi_bytes, phi_s, 4 * phi76.len() as u64, "phi");
            sim.host_compute(cpu_s, "cpu");
            sim.wait(sig);
        }
        let wall = sim.elapsed();
        let cells = QUERIES as u64 * q as u64 * lens76.iter().map(|&l| l as u64).sum::<u64>();
        t2.row(vec![
            q.to_string(),
            table::gcups(cells as f64 / wall / 1e9),
            format!("{:.1}", 100.0 * transfer_s / wall),
        ]);
    }
    t2.emit("trembl_qlen");
    println!(
        "Once the accelerator share outgrows its 5 GB memory, the database\n\
         re-streams across PCIe every query and transfers start to claim a\n\
         visible share of the wall-clock — the effect the paper wanted to\n\
         assess. (Scales are relative to this run's base workload.)"
    );
}
