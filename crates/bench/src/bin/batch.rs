//! Cross-query batching: aggregate GCUPS of N concurrent queries run
//! through ONE shared dual-pool region (`search_many_resumable`, the
//! daemon's batched admission path) vs the per-job-serial baseline
//! (each query its own dual-pool region, back to back — PR 6's daemon).
//!
//! This is the serve-story benchmark, not a kernel benchmark: the
//! queries are short, so per-region costs (pool spawn, scheduling
//! warm-up, tail idle) are a real fraction of each job — exactly the
//! regime the paper's lane-batching argument targets. Results land in
//! `results/batch.csv`.
//!
//! Usage: `batch [scale]` — scale multiplies the database size
//! (default 1).

use std::time::Instant;
use sw_bench::Table;
use sw_core::{
    BatchQuery, DurableOptions, HeteroEngine, HeteroSearchConfig, PreparedDb, SearchEngine,
};
use sw_sched::FaultInjector;
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::{Alphabet, EncodedSeq};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: ((48.0 * scale) as u32).max(16),
        mean_len: 120.0,
        max_len: 600,
        seed: 42,
    };
    let prepared = PreparedDb::prepare(generate_database(&spec), 8, &alphabet);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    // A server-shaped pool (8 CPU + 8 accel workers): per-region spawn
    // and warm-up are the very costs batching amortizes.
    let config = HeteroSearchConfig::best(8, 8);
    let injector = FaultInjector::none();
    let opts = DurableOptions {
        checkpoint_path: None,
        checkpoint_dir: None,
        interval_chunks: u64::MAX,
        drain: None,
        resume: false,
    };
    // Mixed short lengths, the daemon's concurrent-submit profile.
    let lens = [16u32, 24, 32, 48];
    let total_residues = prepared.stats.total_residues as f64;

    let mut t = Table::new(
        "Cross-query batching — aggregate GCUPS, batched region vs per-job serial",
        &[
            "concurrency",
            "serial_ms",
            "batched_ms",
            "serial_gcups",
            "batched_gcups",
            "speedup",
        ],
    );
    for n in [2usize, 4, 8] {
        let queries: Vec<EncodedSeq> = (0..n)
            .map(|i| generate_query(lens[i % lens.len()], 7 + i as u64))
            .collect();
        let plan_len = queries.iter().map(|q| q.residues.len()).max().unwrap();
        let plan = engine.plan_split(&prepared, plan_len, 0.55);
        // Real (unpadded) DP cells over all N queries; both modes score
        // the same product space, so aggregate GCUPS is cells / wall.
        let cells: f64 = queries
            .iter()
            .map(|q| q.residues.len() as f64 * total_residues)
            .sum();

        // Each timed sample covers REPS full passes (single regions are
        // a few ms — too small to time alone on a shared box); best of
        // nine samples smooths pool spawn / allocator warm-up noise.
        const REPS: u32 = 5;
        let mut serial_s = f64::MAX;
        let mut batched_s = f64::MAX;
        for _ in 0..9 {
            let t0 = Instant::now();
            for _ in 0..REPS {
                for q in &queries {
                    let p = engine.plan_split(&prepared, q.residues.len(), 0.55);
                    let out = engine.search_dynamic(&q.residues, &prepared, &p, &config);
                    assert!(!out.results.gcups().value().is_nan());
                }
            }
            serial_s = serial_s.min(t0.elapsed().as_secs_f64() / REPS as f64);

            let batch: Vec<BatchQuery<'_>> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| BatchQuery {
                    residues: &q.residues,
                    id: i as u64,
                    cancel: None,
                    tracer: None,
                })
                .collect();
            let t0 = Instant::now();
            for _ in 0..REPS {
                let out = engine
                    .search_many_resumable(&batch, &prepared, &plan, &config, &injector, &opts)
                    .expect("batched region");
                assert!(out.queries.iter().all(|q| q.results.is_some()));
            }
            batched_s = batched_s.min(t0.elapsed().as_secs_f64() / REPS as f64);
        }
        let serial_g = cells / serial_s / 1e9;
        let batched_g = cells / batched_s / 1e9;
        t.row(vec![
            n.to_string(),
            format!("{:.2}", serial_s * 1e3),
            format!("{:.2}", batched_s * 1e3),
            format!("{serial_g:.3}"),
            format!("{batched_g:.3}"),
            format!("{:.2}", batched_g / serial_g),
        ]);
    }
    t.emit("batch");
}
