//! Workload-distribution strategies — the paper's §VI future work:
//! *"we plan to analyze other workload distribution strategies."*
//!
//! Three strategies over the same workload, per query length:
//!
//! 1. **static-swept** — Fig. 8's approach: try every split fraction,
//!    keep the best (an oracle; needs a full sweep per configuration).
//! 2. **static-calibrated** — one-shot: set the fraction from the device
//!    models' predicted rates `α = r_accel / (r_cpu + r_accel)`.
//! 3. **dynamic** — no fraction at all: every hardware thread of both
//!    devices pulls sequence groups from one shared queue.
//!
//! The punchline the table shows: dynamic *dominates* every static
//! strategy at every query length with zero tuning — a static split,
//! even optimally swept, still suffers boundary imbalance inside each
//! device's share, while global pulling absorbs it.

use sw_bench::{table, Table, Workload};
use sw_core::{
    simulate_hetero, simulate_hetero_dynamic, HeteroEngine, HeteroSearchConfig, SearchConfig,
    SearchEngine, SimConfig,
};
use sw_device::CostModel;
use sw_kernels::KernelVariant;
use sw_sched::{FaultInjector, FaultKind, FaultPlan, FaultSpec, DEVICE_ACCEL};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);

    // One-shot calibrated fraction from model rates.
    let v = KernelVariant::best();
    let r_cpu = xeon.peak_gcups(v, 32, 2000);
    let r_phi = phi.peak_gcups(v, 240, 2000);
    let calibrated = r_phi / (r_cpu + r_phi);
    println!(
        "calibrated one-shot fraction: {:.1}% Phi (model rates {:.1} + {:.1})\n",
        calibrated * 100.0,
        r_cpu,
        r_phi
    );

    let mut t = Table::new(
        "Workload-distribution strategies (paper §VI) — GCUPS per query length",
        &[
            "query_len",
            "static_swept",
            "swept_frac_%",
            "static_calibrated",
            "dynamic",
        ],
    );
    for &q in &[144usize, 464, 1000, 2000, 5478] {
        // Oracle: sweep 21 fractions.
        let mut best = (0.0f64, 0.0f64);
        for step in 0..=20 {
            let f = step as f64 / 20.0;
            let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &workload.db_lens, q, f);
            if r.gcups > best.1 {
                best = (f, r.gcups);
            }
        }
        let cal = simulate_hetero(
            (&xeon, &cpu_cfg),
            (&phi, &phi_cfg),
            &workload.db_lens,
            q,
            calibrated,
        );
        let dyn_ =
            simulate_hetero_dynamic((&xeon, &cpu_cfg), (&phi, &phi_cfg), &workload.db_lens, q);
        t.row(vec![
            q.to_string(),
            table::gcups(best.1),
            format!("{:.0}", best.0 * 100.0),
            table::gcups(cal.gcups),
            table::gcups(dyn_.gcups),
        ]);
    }
    t.emit("dynsplit");
    println!(
        "Dynamic pulling beats every static strategy at every query length\n\
         with zero tuning: a static split, even optimally swept, keeps the\n\
         boundary imbalance inside each device's share, while the shared\n\
         queue absorbs it. The calibrated one-shot static fraction is a\n\
         close, cheap second.\n"
    );

    // Real execution: the instrumented dual-pool scheduler on host
    // threads (both pools run host kernels — exact scores; the metrics
    // show the realised split and per-device throughput).
    let alphabet = sw_seq::Alphabet::protein();
    let n_seqs = ((2_000.0 * scale.max(0.05)) as u32).max(200);
    let spec = sw_seq::gen::DbSpec {
        n_seqs,
        mean_len: 355.4,
        max_len: 5_000,
        seed: 42,
    };
    let prepared =
        sw_core::PreparedDb::prepare(sw_seq::gen::generate_database(&spec), 8, &alphabet);
    let query = sw_seq::gen::generate_query(464, 7);
    let hetero = HeteroEngine::new(SearchEngine::paper_default());
    let plan = hetero.plan_split(&prepared, query.residues.len(), 0.5);
    let cfg = HeteroSearchConfig::new(SearchConfig::best(2), SearchConfig::best(2));
    let outcome = hetero.search_dynamic(&query.residues, &prepared, &plan, &cfg);

    let mut r = Table::new(
        "Real dual-pool run (host threads, 2 + 2 workers, seed split 50%)",
        &[
            "pool", "workers", "tasks", "chunks", "busy_s", "cells", "gcups",
        ],
    );
    for (label, m) in [("cpu", &outcome.cpu), ("accel", &outcome.accel)] {
        r.row(vec![
            label.to_string(),
            m.workers.to_string(),
            m.tasks.to_string(),
            m.chunks.to_string(),
            format!("{:.3}", m.busy.as_secs_f64()),
            m.cells.to_string(),
            format!("{:.2}", m.gcups()),
        ]);
    }
    r.emit("dynsplit-real");
    println!(
        "pools met at batch {} of {}; emergent accel share {:.1}% \
         (seeded {:.1}%); merged {} hits at {:.2} GCUPS\n",
        outcome.boundary,
        prepared.batches.len(),
        outcome.accel_cell_fraction * 100.0,
        plan.accel_cell_fraction * 100.0,
        outcome.results.hits.len(),
        outcome.results.gcups().value()
    );

    // Fault-injection drill: kill the whole accel pool as it starts its
    // first chunk and let the lease/requeue machinery degrade the run to
    // CPU-only. The table contrasts the clean and killed runs; the hit
    // lists must be identical — recovery costs time, never correctness.
    let injector = FaultInjector::new(FaultPlan::single(FaultSpec {
        device: DEVICE_ACCEL,
        chunk: 0,
        kind: FaultKind::KillPool,
    }));
    let killed = hetero
        .search_dynamic_supervised(&query.residues, &prepared, &plan, &cfg, &injector)
        .expect("degraded run still completes on the surviving pool");

    let mut f = Table::new(
        "Fault drill — accel pool killed at its first chunk (kill-pool@0)",
        &[
            "run", "pool", "tasks", "requeues", "failures", "degraded", "hits",
        ],
    );
    for (run, o) in [("clean", &outcome), ("killed", &killed)] {
        for (label, m) in [("cpu", &o.cpu), ("accel", &o.accel)] {
            f.row(vec![
                run.to_string(),
                label.to_string(),
                m.tasks.to_string(),
                m.requeues.to_string(),
                m.failures.to_string(),
                m.degraded.to_string(),
                o.results.hits.len().to_string(),
            ]);
        }
    }
    f.emit("dynsplit-fault");
    assert_eq!(
        outcome.results.hits, killed.results.hits,
        "degraded run must produce the identical hit list"
    );
    println!(
        "accel pool killed at chunk 0: {} chunk(s) requeued, run degraded to \
         CPU-only, hit list identical to the clean run ({} hits).",
        killed.accel.requeues,
        killed.results.hits.len()
    );

    // Traced replay of the same real run: the split-estimator drift the
    // scheduler saw, one row per fresh chunk grab (a Perfetto counter
    // track shows the same series from `--trace-out`).
    let traced_cfg = cfg.with_trace(sw_core::TraceConfig::full());
    let traced = hetero.search_dynamic(&query.residues, &prepared, &plan, &traced_cfg);
    let tl = traced
        .timeline
        .as_ref()
        .expect("full tracing yields a timeline");
    let mut d = Table::new(
        "Split-estimator drift — accel share at each fresh chunk grab",
        &["t_us", "accel_share"],
    );
    for (t_us, share) in tl.rebalances() {
        d.row(vec![t_us.to_string(), format!("{share:.4}")]);
    }
    d.emit("dynsplit-drift");
    println!(
        "traced run: {} events on {} worker tracks ({} dropped), \
         {} rebalance samples\n",
        tl.total_events(),
        tl.tracks.len(),
        tl.total_dropped(),
        tl.rebalances().len()
    );

    // Tracing-overhead guard: the journal must be free when off and
    // cheap when on. Median of three timed runs per config; the CSV is
    // the baseline future PRs compare against.
    let timed = |c: &HeteroSearchConfig| -> Vec<f64> {
        let mut g: Vec<f64> = (0..3)
            .map(|_| {
                hetero
                    .search_dynamic(&query.residues, &prepared, &plan, c)
                    .results
                    .gcups()
                    .value()
            })
            .collect();
        g.sort_by(|a, b| a.total_cmp(b));
        g
    };
    let off = timed(&cfg);
    let full = timed(&traced_cfg);
    let overhead_pct = 100.0 * (1.0 - full[1] / off[1]);
    let mut o = Table::new(
        "Tracing overhead — dual-pool GCUPS, median of 3 (host threads)",
        &["config", "run_min", "run_med", "run_max", "overhead_pct"],
    );
    for (label, runs, oh) in [
        ("trace-off", &off, 0.0),
        ("trace-full", &full, overhead_pct),
    ] {
        o.row(vec![
            label.to_string(),
            format!("{:.3}", runs[0]),
            format!("{:.3}", runs[1]),
            format!("{:.3}", runs[2]),
            format!("{oh:.2}"),
        ]);
    }
    o.emit("trace-overhead");
    println!(
        "full tracing costs {overhead_pct:.2}% of median throughput \
         (off {:.3} vs full {:.3} GCUPS).",
        off[1], full[1]
    );
    // Generous bound — this guards against a pathological regression
    // (e.g. journalling on the disabled path), not scheduler noise.
    assert!(
        full[1] > 0.7 * off[1],
        "full tracing costs more than 30% of throughput: off {:.3}, full {:.3}",
        off[1],
        full[1]
    );

    // Checkpoint-overhead guard. Durable runs write periodic CRC32
    // checkpoints (atomic write-then-rename); the cost that matters is
    // writes-per-run × cost-per-write against the run's wall-clock, so
    // measure both directly — a throughput A/B of two multithreaded runs
    // would drown a 2% budget in scheduler noise. Checkpointing earns
    // its keep on long searches, so the guard times a paper-scale
    // 2000-residue query (write count and write size are set by the
    // batch count, which is unchanged — only the denominator grows to
    // match the workloads durability is for).
    use sw_core::{Checkpoint, DurableOptions, RecoveryTotals, SearchFingerprint};
    let long_query = sw_seq::gen::generate_query(2_000, 7);
    let long_plan = hetero.plan_split(&prepared, long_query.residues.len(), 0.5);
    let ckpt_path = std::env::temp_dir().join("dynsplit-ckpt.swckpt");
    let dopts = DurableOptions {
        checkpoint_path: Some(&ckpt_path),
        checkpoint_dir: None,
        interval_chunks: 8,
        drain: None,
        resume: false,
    };
    let durable = hetero
        .search_dynamic_resumable(
            &long_query.residues,
            &prepared,
            &long_plan,
            &cfg,
            &FaultInjector::none(),
            &dopts,
        )
        .expect("durable run completes");
    let res = durable.outcome.as_ref().expect("not drained");
    let elapsed = res.results.elapsed.as_secs_f64();

    // Worst-case checkpoint: every batch committed, every sequence a
    // scored hit — the size the *last* periodic write of a run carries.
    let full_ckpt = Checkpoint {
        fingerprint: SearchFingerprint::compute(&prepared, &long_query.residues),
        seq: 0,
        resumes: 0,
        accel_share: 0.5,
        recovery: [RecoveryTotals::default(); 2],
        done: (0..prepared.batches.len())
            .map(|i| sw_core::BatchResult {
                batch: i,
                device: i % 2,
                hits: prepared.batches[i]
                    .ids()
                    .iter()
                    .map(|&id| sw_core::Hit { id, score: 100 })
                    .collect(),
                cells: Default::default(),
                rescued: 0,
            })
            .collect(),
    };
    let mut write_s: Vec<f64> = (0..9)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let bytes = full_ckpt
                .write_atomic(&ckpt_path)
                .expect("bench checkpoint write");
            let dt = t0.elapsed().as_secs_f64();
            assert!(bytes > 0);
            dt
        })
        .collect();
    write_s.sort_by(|a, b| a.total_cmp(b));
    let _ = std::fs::remove_file(&ckpt_path);
    let per_write = write_s[write_s.len() / 2];
    let writes = durable.checkpoints_written.max(1) as f64;
    let ckpt_overhead_pct = 100.0 * (writes * per_write) / elapsed;
    let mut c = Table::new(
        "Checkpoint overhead — periodic durable writes vs run wall-clock",
        &[
            "interval_chunks",
            "writes_per_run",
            "write_med_ms",
            "run_s",
            "overhead_pct",
        ],
    );
    c.row(vec![
        dopts.interval_chunks.to_string(),
        format!("{writes:.0}"),
        format!("{:.3}", per_write * 1e3),
        format!("{elapsed:.3}"),
        format!("{ckpt_overhead_pct:.3}"),
    ]);
    c.emit("checkpoint-overhead");
    println!(
        "durable run wrote {writes:.0} checkpoint(s); a worst-case write costs \
         {:.3} ms — {ckpt_overhead_pct:.3}% of the run.",
        per_write * 1e3
    );
    assert!(
        ckpt_overhead_pct < 2.0,
        "checkpointing costs {ckpt_overhead_pct:.3}% of the run (budget 2%): \
         {writes:.0} writes × {:.3} ms over {elapsed:.3} s",
        per_write * 1e3
    );
}
