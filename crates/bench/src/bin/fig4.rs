//! Figure 4: performance on the Intel Xeon with variable query length.
//!
//! Paper: 32 threads, the 20-query set (lengths 144–5478); query length
//! has little impact except a rising trend for the SP variants
//! (profile-build amortisation), reaching 25.1 GCUPS (simd-SP) and
//! 32 GCUPS (intrinsic-SP) at the longest queries; QP ≪ SP because AVX
//! has no vector gather.

use sw_bench::{table, Table, Workload};
use sw_device::CostModel;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let model = CostModel::xeon();
    let variants = sw_bench::workload::fig_variants();

    let mut headers: Vec<&str> = vec!["query_len"];
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(
        "Fig. 4 — Xeon GCUPS vs query length @ 32 threads (paper: simd-SP→25.1, intrinsic-SP→32)",
        &headers,
    );
    for &q in &workload.query_lens.clone() {
        let mut row = vec![q.to_string()];
        for (_, v) in &variants {
            let r = workload.simulate_query(&model, *v, 32, q as usize);
            row.push(table::gcups(r.gcups));
        }
        t.row(row);
    }
    t.emit("fig4");
}
