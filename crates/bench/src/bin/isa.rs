//! ISA comparison: measured GCUPS of the intrinsic kernels under each
//! dispatchable instruction set (portable / SSE2 / AVX2) at both vector
//! widths and profile flavours, on this host, single-threaded.
//!
//! Unlike the `fig*` binaries this one does **not** simulate — it times
//! the real kernels on a synthetic Swiss-Prot-like workload, so the table
//! shows what the `std::arch` tier actually buys over the autovectorized
//! portable kernels. Results land in `results/isa.csv`.
//!
//! Usage: `isa [scale]` — scale multiplies the database size (default 1).

use sw_bench::{table, Table};
use sw_core::{PreparedDb, SearchConfig, SearchEngine};
use sw_kernels::{KernelIsa, KernelVariant, ProfileMode, Vectorization};
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::Alphabet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: ((400.0 * scale) as u32).max(16),
        mean_len: 355.4,
        max_len: 5_000,
        seed: 42,
    };
    let seqs = generate_database(&spec);
    let query = generate_query(300, 7);
    let engine = SearchEngine::paper_default();
    let detected = KernelIsa::detect();
    println!("# detected isa: {detected}\n");

    let mut t = Table::new(
        "Kernel ISA comparison — measured GCUPS (1 thread, this host)",
        &["isa", "lanes", "intrinsic-QP", "intrinsic-SP"],
    );
    for isa in [KernelIsa::Portable, KernelIsa::Sse2, KernelIsa::Avx2] {
        if !isa.is_available() {
            println!("(skipping {isa}: not supported on this host)");
            continue;
        }
        // 8 × i16 is SSE2's native width, 16 × i16 is AVX2's; each ISA
        // also runs the other width through its widest engaged kernel.
        for lanes in [8usize, 16] {
            let prepared = PreparedDb::prepare(seqs.clone(), lanes, &alphabet);
            let mut row = vec![isa.name().to_string(), lanes.to_string()];
            for profile in [ProfileMode::Query, ProfileMode::Sequence] {
                let cfg = SearchConfig::best(1)
                    .with_variant(KernelVariant {
                        vec: Vectorization::Intrinsic,
                        profile,
                        blocking: true,
                    })
                    .with_isa(isa);
                // Best of two runs smooths scheduler warm-up noise.
                let g = (0..2)
                    .map(|_| {
                        engine
                            .search(&query.residues, &prepared, &cfg)
                            .gcups()
                            .value()
                    })
                    .fold(0.0f64, f64::max);
                row.push(table::gcups(g));
            }
            t.row(row);
        }
    }
    t.emit("isa");
}
