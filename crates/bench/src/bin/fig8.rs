//! Figure 8: performance of the heterogeneous algorithm for different
//! workload distributions.
//!
//! Paper: intrinsic-SP on both devices; abscissa = percentage of the
//! workload sent to the Phi; best configuration ≈ 45 % Xeon / 55 % Phi at
//! 62.6 GCUPS — "almost the combination of their individual throughputs"
//! (30.4 + 34.9). This binary also reports the energy figures the paper
//! leaves as future work.

use sw_bench::{paper, table, Table, Workload};
use sw_core::{simulate_hetero, SimConfig};
use sw_device::CostModel;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);
    // Representative query: the paper's mid/long range dominates runtime.
    let query_len = 2000usize;

    let mut t = Table::new(
        "Fig. 8 — heterogeneous GCUPS vs % workload on the Phi (paper optimum: 62.6 @ 55 %)",
        &[
            "phi_share_%",
            "GCUPS",
            "cpu_GCUPS",
            "phi_GCUPS",
            "GCUPS_per_W",
        ],
    );
    let mut best = (0.0f64, 0.0f64);
    for step in 0..=20 {
        let frac = step as f64 / 20.0;
        let r = simulate_hetero(
            (&xeon, &cpu_cfg),
            (&phi, &phi_cfg),
            &workload.db_lens,
            query_len,
            frac,
        );
        if r.gcups > best.1 {
            best = (frac, r.gcups);
        }
        t.row(vec![
            format!("{:.0}", frac * 100.0),
            table::gcups(r.gcups),
            table::gcups(r.cpu_gcups),
            table::gcups(r.accel_gcups),
            format!("{:.3}", r.gcups_per_watt()),
        ]);
    }
    t.emit("fig8");
    println!(
        "optimum: {:.1} GCUPS at {:.0} % Phi share (paper: {:.1} at {:.0} %)",
        best.1,
        best.0 * 100.0,
        paper::HETERO_BEST_GCUPS,
        paper::HETERO_BEST_PHI_FRACTION * 100.0
    );
}
