//! Shard scaling: one query fanned over N contiguous shards of a
//! length-sorted database, each shard searched by its own single-thread
//! engine in parallel — the in-process model of `search --shards` with
//! N worker daemons. Reports aggregate GCUPS at 1/2/4 shards and
//! asserts the k-way merge reproduces the unsharded top-K exactly
//! (score desc, then global db index asc) before any row is emitted.
//!
//! Speedup is bounded by available cores: on a single-core box every
//! row sits near 1.0 and the table is a merge-correctness record, not
//! a scaling claim.
//!
//! Results land in `results/shard.csv`.
//!
//! Usage: `shard [scale]` — scale multiplies the database size
//! (default 1).

use std::time::Instant;
use sw_bench::Table;
use sw_core::{merge_top_k, HeteroEngine, Hit, PreparedDb, SearchConfig, SearchEngine};
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::{Alphabet, SeqId};
use sw_swdb::{shard, SequenceDatabase};

const TOP: usize = 32;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: ((800.0 * scale) as u32).max(32),
        mean_len: 200.0,
        max_len: 1200,
        seed: 1402,
    };
    // The coordinator's world: shards are contiguous cuts of the
    // length-sorted parent, so a shard-local hit id plus the shard base
    // is the global index the merge tie-break runs on.
    let sorted = shard::length_sorted(&SequenceDatabase::from_sequences(generate_database(&spec)));
    let query = generate_query(600, 77);
    let engine = HeteroEngine::new(SearchEngine::paper_default());

    let prepare_range = |range: (usize, usize)| -> PreparedDb {
        let seqs = (range.0..range.1)
            .map(|i| sw_seq::EncodedSeq {
                header: sorted.header(SeqId(i as u32)).into(),
                residues: sorted.seq(SeqId(i as u32)).residues.to_vec(),
            })
            .collect();
        PreparedDb::prepare(seqs, 8, &alphabet)
    };
    let search_shard = |prepared: &PreparedDb, base: usize| -> Vec<Hit> {
        let plan = engine.plan_split(prepared, query.residues.len(), 0.55);
        let res = engine.search(
            &query.residues,
            prepared,
            &plan,
            &SearchConfig::best(1),
            &SearchConfig::best(1),
        );
        res.top(TOP)
            .iter()
            .map(|h| Hit {
                id: SeqId(base as u32 + h.id.0),
                score: h.score,
            })
            .collect()
    };

    let cells = query.residues.len() as f64 * sorted.total_residues() as f64;
    let mut baseline: Option<(Vec<Hit>, f64)> = None;
    let mut t = Table::new(
        "Shard scaling — one query over N parallel single-thread shards, merged top-K",
        &["shards", "wall_ms", "agg_gcups", "speedup", "merge"],
    );
    for n in [1usize, 2, 4] {
        let plan = shard::plan_shards(&sorted, n);
        let prepared: Vec<PreparedDb> = plan.iter().map(|r| prepare_range(*r)).collect();
        // Best of five: shard walls are ms-scale, pool spawn noise is
        // a real fraction of one sample.
        let mut wall = f64::MAX;
        let mut merged = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let per_shard: Vec<Vec<Hit>> = std::thread::scope(|s| {
                let handles: Vec<_> = prepared
                    .iter()
                    .zip(&plan)
                    .map(|(p, r)| s.spawn(|| search_shard(p, r.0)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let dt = t0.elapsed().as_secs_f64();
            if dt < wall {
                wall = dt;
            }
            merged = merge_top_k(per_shard, TOP);
        }
        let (ref_hits, ref_wall) = baseline.get_or_insert_with(|| (merged.clone(), wall));
        assert_eq!(
            &merged, ref_hits,
            "n={n}: merged top-K must reproduce the unsharded order exactly"
        );
        t.row(vec![
            n.to_string(),
            format!("{:.2}", wall * 1e3),
            format!("{:.3}", cells / wall / 1e9),
            format!("{:.2}", *ref_wall / wall),
            "exact".into(),
        ]);
    }
    t.emit("shard");
}
