//! Figure 7: blocking vs non-blocking on both devices, variable query
//! lengths.
//!
//! Paper: intrinsic-SP on Xeon (32T) and Phi (240T); *"exploiting data
//! locality can seriously improve the performance on both devices …
//! this optimization has a larger improvement in the Intel Xeon Phi
//! because its cache size is lower"* (512 KB L2, no L3 vs the Xeon's
//! L3-backed hierarchy).

use sw_bench::{table, Table, Workload};
use sw_device::CostModel;
use sw_kernels::KernelVariant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let workload = if scale >= 1.0 {
        Workload::paper_scale(1)
    } else {
        Workload::scaled(scale, 1)
    };
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let blocked = KernelVariant::best();
    let unblocked = KernelVariant {
        blocking: false,
        ..blocked
    };

    let mut t = Table::new(
        "Fig. 7 — blocking vs non-blocking, intrinsic-SP (Xeon @32T, Phi @240T)",
        &[
            "query_len",
            "xeon-block",
            "xeon-noblock",
            "phi-block",
            "phi-noblock",
        ],
    );
    for &q in &workload.query_lens.clone() {
        let q = q as usize;
        t.row(vec![
            q.to_string(),
            table::gcups(workload.simulate_query(&xeon, blocked, 32, q).gcups),
            table::gcups(workload.simulate_query(&xeon, unblocked, 32, q).gcups),
            table::gcups(workload.simulate_query(&phi, blocked, 240, q).gcups),
            table::gcups(workload.simulate_query(&phi, unblocked, 240, q).gcups),
        ]);
    }
    t.emit("fig7");
}
