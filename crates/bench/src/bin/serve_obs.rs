//! Observability-plane overhead on the daemon's batched path: aggregate
//! GCUPS of N concurrent queries through ONE shared dual-pool region,
//! bare (`search_many_resumable` alone, PR 7's collector hot path) vs
//! fully instrumented (the same region wrapped in every per-job
//! bookkeeping call the daemon makes — registry lifecycle stamps, obs
//! histograms, cells/region counters, plus one Prometheus render per
//! pass standing in for the periodic `--metrics-file` dump).
//!
//! This extends the `trace-overhead` guard (results/trace-overhead.csv,
//! per-search tracer) to the serve plane: the observability layer must
//! cost under 2% of batched throughput. Results land in
//! `results/serve-obs.csv`.
//!
//! Usage: `serve_obs [scale]` — scale multiplies the database size
//! (default 1).

use std::sync::Arc;
use std::time::Instant;
use sw_bench::Table;
use sw_core::{
    BatchQuery, DurableOptions, HeteroEngine, HeteroSearchConfig, PreparedDb, SearchEngine,
};
use sw_sched::{DrainSignal, FaultInjector};
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::{Alphabet, EncodedSeq};
use sw_serve::{JobState, Obs, ObsConfig, Registry};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: ((48.0 * scale) as u32).max(16),
        mean_len: 120.0,
        max_len: 600,
        seed: 42,
    };
    let prepared = PreparedDb::prepare(generate_database(&spec), 8, &alphabet);
    let engine = HeteroEngine::new(SearchEngine::paper_default());
    let config = HeteroSearchConfig::best(8, 8);
    let injector = FaultInjector::none();
    let opts = DurableOptions {
        checkpoint_path: None,
        checkpoint_dir: None,
        interval_chunks: u64::MAX,
        drain: None,
        resume: false,
    };
    let lens = [16u32, 24, 32, 48];
    let total_residues = prepared.stats.total_residues as f64;

    // One obs plane + registry across the whole run, like a daemon
    // lifetime; quota is sized so no bench submit is ever rejected.
    let obs = Arc::new(Obs::new(ObsConfig::default()));
    let registry = Registry::with_obs(obs.clone());
    let quota = 1_000_000;

    let mut t = Table::new(
        "Observability overhead — batched region GCUPS, bare vs instrumented",
        &[
            "concurrency",
            "bare_ms",
            "obs_ms",
            "bare_gcups",
            "obs_gcups",
            "overhead_pct",
        ],
    );
    let mut worst = 0.0f64;
    for n in [2usize, 4, 8] {
        let queries: Vec<EncodedSeq> = (0..n)
            .map(|i| generate_query(lens[i % lens.len()], 7 + i as u64))
            .collect();
        let plan_len = queries.iter().map(|q| q.residues.len()).max().unwrap();
        let plan = engine.plan_split(&prepared, plan_len, 0.55);
        let cells: f64 = queries
            .iter()
            .map(|q| q.residues.len() as f64 * total_residues)
            .sum();

        // Best of nine samples of REPS passes each, same protocol as
        // results/batch.csv — regions are a few ms, too small to time
        // alone.
        const REPS: u32 = 5;
        let mut bare_s = f64::MAX;
        let mut obs_s = f64::MAX;
        for _ in 0..9 {
            let batch: Vec<BatchQuery<'_>> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| BatchQuery {
                    residues: &q.residues,
                    id: i as u64,
                    cancel: None,
                    tracer: None,
                })
                .collect();
            let t0 = Instant::now();
            for _ in 0..REPS {
                let out = engine
                    .search_many_resumable(&batch, &prepared, &plan, &config, &injector, &opts)
                    .expect("bare region");
                assert!(out.queries.iter().all(|q| q.results.is_some()));
            }
            bare_s = bare_s.min(t0.elapsed().as_secs_f64() / REPS as f64);

            let t0 = Instant::now();
            for _ in 0..REPS {
                // The daemon's per-job bookkeeping, replicated from
                // op_submit + run_batch_jobs: submit/admit stamps on
                // the way in, gather/running at region formation,
                // cells/first-hit/finish on the way out.
                let ids: Vec<u64> = queries
                    .iter()
                    .map(|q| {
                        let (id, _) = registry
                            .submit(
                                "bench",
                                q.residues.len(),
                                quota,
                                Arc::new(DrainSignal::new()),
                            )
                            .expect("quota sized for the bench");
                        registry.mark_admitted(id);
                        id
                    })
                    .collect();
                for id in &ids {
                    registry.mark_gathered(*id, n);
                    assert!(registry.mark_running(*id));
                }
                obs.on_region(n);
                let out = engine
                    .search_many_resumable(&batch, &prepared, &plan, &config, &injector, &opts)
                    .expect("instrumented region");
                for (id, (q, res)) in ids.iter().zip(queries.iter().zip(&out.queries)) {
                    obs.on_cells(
                        q.residues.len() as u64 * total_residues as u64,
                        obs.now_us(),
                    );
                    registry.record_first_hit(*id);
                    registry.finish(*id, JobState::Done, 10, res.resumes, None);
                }
                // Periodic metrics dump stand-in: render one scrape.
                let scrape = obs.prometheus(&registry.stats(), n);
                assert!(scrape.contains("sw_serve_done_total"));
            }
            obs_s = obs_s.min(t0.elapsed().as_secs_f64() / REPS as f64);
        }
        let bare_g = cells / bare_s / 1e9;
        let obs_g = cells / obs_s / 1e9;
        let overhead_pct = 100.0 * (1.0 - obs_g / bare_g);
        worst = worst.max(overhead_pct);
        t.row(vec![
            n.to_string(),
            format!("{:.2}", bare_s * 1e3),
            format!("{:.2}", obs_s * 1e3),
            format!("{bare_g:.3}"),
            format!("{obs_g:.3}"),
            format!("{overhead_pct:.2}"),
        ]);
    }
    t.emit("serve-obs");
    println!(
        "observability plane worst-case overhead on the batched path: {worst:.2}% \
         (budget 2%)."
    );
    assert!(
        worst < 2.0,
        "observability plane costs {worst:.2}% of batched throughput (budget 2%)"
    );
}
