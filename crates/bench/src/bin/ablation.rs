//! Inter-task vs intra-task ablation — the paper's §IV design choice,
//! measured on this machine with the real kernels.
//!
//! *"the inter-task approach usually outperform the intra-task
//! counterpart, especially when aligning short sequences. Essentially,
//! when aligning several pairs in parallel, we avoid the data dependences
//! that limit the performance of intra-task approaches"* — the paper's
//! justification for adopting SWIPE's scheme over Farrar's. Both kernels
//! exist in this repository, so the claim is directly measurable: this
//! binary sweeps database sequence length and times both on identical
//! workloads (single thread; both kernels use the same `I16s` vector
//! substrate, so the comparison isolates the *scheme*).

use std::time::Instant;
use sw_bench::Table;
use sw_kernels::intertask::{sw_lanes_sp, Workspace};
use sw_kernels::striped::{sw_striped, StripedProfile};
use sw_kernels::SwParams;
use sw_seq::gen::SwissProtGen;
use sw_seq::{Alphabet, SeqId};
use sw_swdb::batch::pad_code;
use sw_swdb::{LaneBatch, SequenceProfile};

const LANES: usize = 16;
/// Total database residues per configuration (constant work).
const DB_RESIDUES: usize = 400_000;

fn main() {
    let a = Alphabet::protein();
    let params = SwParams::paper_default();
    let mut g = SwissProtGen::new(355.4, 5);

    let mut t = Table::new(
        "Inter-task (SWIPE-style) vs intra-task (Farrar striped), single thread, this host",
        &[
            "query_len",
            "seq_len",
            "inter_Mcells/s",
            "intra_Mcells/s",
            "inter/intra",
        ],
    );

    for &(qlen, len) in &[
        (100u32, 50usize),
        (100, 355),
        (400, 50),
        (400, 355),
        (400, 3000),
        (2000, 355),
        (2000, 3000),
    ] {
        let query = g.sequence("q", qlen).residues;
        let n_seqs = (DB_RESIDUES / len).max(LANES);
        let seqs: Vec<Vec<u8>> = (0..n_seqs)
            .map(|_| g.sequence("s", len as u32).residues)
            .collect();
        let cells = (query.len() * len * n_seqs) as f64;

        // --- inter-task: lane batches + SP kernel ---------------------
        let t0 = Instant::now();
        let mut ws = Workspace::<LANES>::new();
        let mut checksum = 0i64;
        for group in seqs.chunks(LANES) {
            let refs: Vec<(SeqId, &[u8])> = group
                .iter()
                .enumerate()
                .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
                .collect();
            let batch = LaneBatch::pack(LANES, &refs, pad_code(&a));
            let sp = SequenceProfile::build(&batch, &params.matrix, &a);
            let out = sw_lanes_sp::<LANES>(&query, &sp, &batch, &params.gap, &mut ws);
            checksum += out.scores.iter().sum::<i64>();
        }
        let inter_s = t0.elapsed().as_secs_f64();

        // --- intra-task: striped kernel, one pair at a time ------------
        let t0 = Instant::now();
        let profile = StripedProfile::<LANES>::build(&query, &params);
        let mut checksum2 = 0i64;
        for s in &seqs {
            checksum2 += sw_striped(&profile, s, &params).score;
        }
        let intra_s = t0.elapsed().as_secs_f64();

        assert_eq!(checksum, checksum2, "both schemes must score identically");
        let inter_rate = cells / inter_s / 1e6;
        let intra_rate = cells / intra_s / 1e6;
        t.row(vec![
            qlen.to_string(),
            len.to_string(),
            format!("{inter_rate:.0}"),
            format!("{intra_rate:.0}"),
            format!("{:.2}x", inter_rate / intra_rate),
        ]);
    }
    t.emit("ablation");
    println!(
        "Reproduction note: on this host the striped intra-task kernel is\n\
         consistently FASTER than the inter-task kernel — the opposite of\n\
         the paper's §IV expectation. The mechanism: the inter-task DP\n\
         carries 4·M·L bytes of column state (L1-hostile as M grows),\n\
         while striping carries ~6·M bytes regardless of L, and modern\n\
         LLVM autovectorizes the lazy-F loop that was expensive on\n\
         SSE2-era hardware. The paper's preference held for its era's\n\
         implementations (SWIPE vs Farrar's original); the trade-off is\n\
         implementation- and ISA-dependent, which this table documents\n\
         honestly. Scores from both schemes are asserted identical."
    );
}
