//! # sw-bench — figure harness shared code
//!
//! Each `fig*` binary regenerates one figure of the paper's evaluation
//! (§V) as a markdown table on stdout plus a CSV in `results/`. This
//! module holds the common workload construction, the paper's published
//! reference numbers, and table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod micro;
pub mod paper;
pub mod table;
pub mod workload;

pub use table::Table;
pub use workload::Workload;
